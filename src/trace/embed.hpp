// Embedded-object folding (paper §2.2): if an image request from a client
// arrives within 10 seconds of an HTML request from the same client, the
// image is treated as embedded in that page — its bytes are folded into the
// page record and the image request is dropped. The models then predict
// page-level navigation, not per-image fetches.
#pragma once

#include <cstdint>

#include "trace/record.hpp"

namespace webppm::trace {

struct EmbedFoldOptions {
  /// Maximum gap between the HTML request and an embedded image (seconds).
  TimeSec window_seconds = 10;
};

struct EmbedFoldStats {
  std::uint64_t pages = 0;           ///< HTML requests kept
  std::uint64_t folded_images = 0;   ///< image requests merged into pages
  std::uint64_t orphan_images = 0;   ///< images with no recent page (kept)
  std::uint64_t other = 0;           ///< non-HTML/non-image requests (kept)
};

/// Produces a page-level trace from a raw request trace. URL and client
/// intern tables are rebuilt (only surviving records are interned).
EmbedFoldStats fold_embedded_objects(const Trace& in, Trace& out,
                                     const EmbedFoldOptions& opt = {});

}  // namespace webppm::trace
