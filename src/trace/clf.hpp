// Common Log Format reader/writer.
//
// Both traces the paper uses (NASA-KSC and UCB-CS) are distributed as CLF:
//   host ident authuser [dd/Mon/yyyy:HH:MM:SS zone] "METHOD path proto" status bytes
// The reader is tolerant of the malformed lines real 1995-era logs contain
// (missing quotes, "-" byte counts, junk requests) and reports per-line
// outcomes so callers can account for skips.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

#include "trace/record.hpp"

namespace webppm::trace {

/// A parsed CLF line before interning.
struct ClfEntry {
  std::string host;
  TimeSec timestamp = 0;  ///< seconds since Unix epoch (UTC)
  Method method = Method::kGet;
  std::string path;
  std::uint16_t status = 0;
  std::uint32_t size_bytes = 0;
};

/// Parses one CLF line; returns nullopt for malformed lines.
std::optional<ClfEntry> parse_clf_line(std::string_view line);

/// Formats an entry back to a CLF line (UTC, "+0000" zone). Inverse of
/// parse_clf_line up to ident/authuser fields, which CLF logs leave as "-".
std::string format_clf_line(const ClfEntry& entry);

struct ClfReadStats {
  std::uint64_t lines = 0;
  std::uint64_t parsed = 0;
  std::uint64_t skipped = 0;
};

/// Reads an entire CLF stream into a Trace. Timestamps are rebased so the
/// first chronological request defines the trace epoch (start of its day).
/// Non-GET and error-status (>= 400) requests are kept in the trace; the
/// session extractor decides what to include, mirroring the paper's
/// simulator which models what the server actually logged.
ClfReadStats read_clf(std::istream& in, Trace& out);

/// Writes a trace as CLF lines (for interchange with external tools).
void write_clf(std::ostream& out, const Trace& trace);

}  // namespace webppm::trace
