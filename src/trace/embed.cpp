#include "trace/embed.hpp"

#include <unordered_map>
#include <vector>

namespace webppm::trace {

EmbedFoldStats fold_embedded_objects(const Trace& in, Trace& out,
                                     const EmbedFoldOptions& opt) {
  EmbedFoldStats stats;

  // Classify URLs once (by interned id).
  std::vector<ResourceKind> kind(in.urls.size());
  for (std::uint32_t u = 0; u < in.urls.size(); ++u) {
    kind[u] = classify_resource(in.urls.name(u));
  }

  struct LastPage {
    std::size_t out_index = 0;  // index into out.requests
    TimeSec time = 0;
    bool valid = false;
  };
  std::unordered_map<ClientId, LastPage> last_page;

  out.requests.clear();
  out.requests.reserve(in.requests.size());
  for (const auto& r : in.requests) {
    const ResourceKind k = kind[r.url];
    if (k == ResourceKind::kImage) {
      if (auto it = last_page.find(r.client);
          it != last_page.end() && it->second.valid &&
          r.timestamp >= it->second.time &&
          r.timestamp - it->second.time <= opt.window_seconds) {
        out.requests[it->second.out_index].size_bytes += r.size_bytes;
        ++stats.folded_images;
        continue;
      }
      ++stats.orphan_images;
    } else if (k == ResourceKind::kOther) {
      ++stats.other;
    }

    Request nr = r;
    nr.client = out.clients.intern(in.clients.name(r.client));
    nr.url = out.urls.intern(in.urls.name(r.url));
    out.requests.push_back(nr);

    if (k == ResourceKind::kHtml) {
      ++stats.pages;
      last_page[r.client] = {out.requests.size() - 1, r.timestamp, true};
    }
  }
  out.finalize();
  return stats;
}

}  // namespace webppm::trace
