#include "trace/clf.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <charconv>
#include <istream>
#include <ostream>

namespace webppm::trace {
namespace {

constexpr std::array<std::string_view, 12> kMonths = {
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};

std::optional<int> month_index(std::string_view m) {
  for (int i = 0; i < 12; ++i) {
    if (kMonths[static_cast<std::size_t>(i)] == m) return i;
  }
  return std::nullopt;
}

bool is_leap(int y) { return (y % 4 == 0 && y % 100 != 0) || y % 400 == 0; }

constexpr std::array<int, 12> kCumDays = {0,   31,  59,  90,  120, 151,
                                          181, 212, 243, 273, 304, 334};

/// Civil date/time -> seconds since Unix epoch (UTC), no leap seconds.
std::int64_t to_epoch(int year, int month, int day, int hh, int mm, int ss) {
  std::int64_t days = 0;
  for (int y = 1970; y < year; ++y) days += is_leap(y) ? 366 : 365;
  days += kCumDays[static_cast<std::size_t>(month)];
  if (month > 1 && is_leap(year)) days += 1;
  days += day - 1;
  return ((days * 24 + hh) * 60 + mm) * 60 + ss;
}

/// Seconds since epoch -> civil date/time (UTC).
void from_epoch(std::int64_t t, int& year, int& month, int& day, int& hh,
                int& mm, int& ss) {
  std::int64_t days = t / 86400;
  std::int64_t rem = t % 86400;
  hh = static_cast<int>(rem / 3600);
  mm = static_cast<int>((rem % 3600) / 60);
  ss = static_cast<int>(rem % 60);
  year = 1970;
  for (;;) {
    const int len = is_leap(year) ? 366 : 365;
    if (days < len) break;
    days -= len;
    ++year;
  }
  month = 11;
  while (month > 0) {
    int start = kCumDays[static_cast<std::size_t>(month)];
    if (month > 1 && is_leap(year)) start += 1;
    if (days >= start) {
      days -= start;
      break;
    }
    --month;
  }
  if (month == 0) {
    // days already relative to Jan 1
  }
  day = static_cast<int>(days) + 1;
}

template <typename Int>
bool parse_int(std::string_view s, Int& out) {
  const auto* begin = s.data();
  const auto* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc{} && ptr == end;
}

Method parse_method(std::string_view m) {
  if (m == "GET") return Method::kGet;
  if (m == "HEAD") return Method::kHead;
  if (m == "POST") return Method::kPost;
  return Method::kOther;
}

std::string_view method_name(Method m) {
  switch (m) {
    case Method::kGet: return "GET";
    case Method::kHead: return "HEAD";
    case Method::kPost: return "POST";
    case Method::kOther: return "OTHER";
  }
  return "GET";
}

}  // namespace

std::optional<ClfEntry> parse_clf_line(std::string_view line) {
  // host ident authuser [date] "request" status bytes
  const auto host_end = line.find(' ');
  if (host_end == std::string_view::npos || host_end == 0) return std::nullopt;

  const auto lbr = line.find('[', host_end);
  const auto rbr = line.find(']', lbr == std::string_view::npos ? 0 : lbr);
  if (lbr == std::string_view::npos || rbr == std::string_view::npos) {
    return std::nullopt;
  }
  const auto date = line.substr(lbr + 1, rbr - lbr - 1);
  // dd/Mon/yyyy:HH:MM:SS zone  (zone = +HHMM or -HHMM)
  if (date.size() < 20 || date[2] != '/' || date[6] != '/' ||
      date[11] != ':' || date[14] != ':' || date[17] != ':') {
    return std::nullopt;
  }
  int day = 0, year = 0, hh = 0, mm = 0, ss = 0;
  if (!parse_int(date.substr(0, 2), day) ||
      !parse_int(date.substr(7, 4), year) ||
      !parse_int(date.substr(12, 2), hh) ||
      !parse_int(date.substr(15, 2), mm) ||
      !parse_int(date.substr(18, 2), ss)) {
    return std::nullopt;
  }
  const auto mon = month_index(date.substr(3, 3));
  if (!mon || day < 1 || day > 31 || hh > 23 || mm > 59 || ss > 60) {
    return std::nullopt;
  }
  std::int64_t zone_offset = 0;
  if (const auto sp = date.find(' '); sp != std::string_view::npos) {
    const auto zone = date.substr(sp + 1);
    if (zone.size() == 5 && (zone[0] == '+' || zone[0] == '-')) {
      int zh = 0, zm = 0;
      if (parse_int(zone.substr(1, 2), zh) && parse_int(zone.substr(3, 2), zm)) {
        zone_offset = (zh * 60 + zm) * 60;
        if (zone[0] == '-') zone_offset = -zone_offset;
      }
    }
  }

  const auto q1 = line.find('"', rbr);
  if (q1 == std::string_view::npos) return std::nullopt;
  const auto q2 = line.find('"', q1 + 1);
  if (q2 == std::string_view::npos) return std::nullopt;
  const auto req = line.substr(q1 + 1, q2 - q1 - 1);

  // "METHOD path [proto]" — 1995 logs contain HTTP/0.9 lines without proto.
  const auto m_end = req.find(' ');
  if (m_end == std::string_view::npos) return std::nullopt;
  auto path_part = req.substr(m_end + 1);
  if (const auto p_end = path_part.rfind(' ');
      p_end != std::string_view::npos &&
      path_part.substr(p_end + 1).starts_with("HTTP/")) {
    path_part = path_part.substr(0, p_end);
  }
  if (path_part.empty()) return std::nullopt;

  // status bytes
  auto rest = line.substr(q2 + 1);
  while (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
  const auto s_end = rest.find(' ');
  if (s_end == std::string_view::npos) return std::nullopt;
  std::uint16_t status = 0;
  if (!parse_int(rest.substr(0, s_end), status)) return std::nullopt;
  auto bytes_str = rest.substr(s_end + 1);
  while (!bytes_str.empty() && bytes_str.back() == ' ') {
    bytes_str.remove_suffix(1);
  }
  std::uint32_t bytes = 0;
  if (bytes_str != "-" && !parse_int(bytes_str, bytes)) return std::nullopt;

  ClfEntry e;
  e.host = std::string(line.substr(0, host_end));
  const std::int64_t local =
      to_epoch(year, *mon, day, hh, mm, std::min(ss, 59));
  const std::int64_t utc = local - zone_offset;
  e.timestamp = utc < 0 ? 0 : static_cast<TimeSec>(utc);
  e.method = parse_method(req.substr(0, m_end));
  e.path = std::string(path_part);
  e.status = status;
  e.size_bytes = bytes;
  return e;
}

std::string format_clf_line(const ClfEntry& entry) {
  int year, month, day, hh, mm, ss;
  from_epoch(static_cast<std::int64_t>(entry.timestamp), year, month, day, hh,
             mm, ss);
  char date[64];
  std::snprintf(date, sizeof date, "%02d/%s/%04d:%02d:%02d:%02d +0000", day,
                std::string(kMonths[static_cast<std::size_t>(month)]).c_str(),
                year, hh, mm, ss);
  std::string out;
  out.reserve(entry.host.size() + entry.path.size() + 64);
  out += entry.host;
  out += " - - [";
  out += date;
  out += "] \"";
  out += method_name(entry.method);
  out += ' ';
  out += entry.path;
  out += " HTTP/1.0\" ";
  out += std::to_string(entry.status);
  out += ' ';
  out += std::to_string(entry.size_bytes);
  return out;
}

ClfReadStats read_clf(std::istream& in, Trace& out) {
  ClfReadStats stats;
  std::string line;
  TimeSec min_ts = ~TimeSec{0};
  while (std::getline(in, line)) {
    ++stats.lines;
    const auto entry = parse_clf_line(line);
    if (!entry) {
      ++stats.skipped;
      continue;
    }
    ++stats.parsed;
    Request r;
    r.timestamp = entry->timestamp;
    r.client = out.clients.intern(entry->host);
    r.url = out.urls.intern(entry->path);
    r.size_bytes = entry->size_bytes;
    r.status = entry->status;
    r.method = entry->method;
    out.requests.push_back(r);
    min_ts = std::min(min_ts, r.timestamp);
  }
  if (!out.requests.empty()) {
    // Rebase to the start of the first request's UTC day so day_of() gives
    // calendar-style day indexes.
    const TimeSec epoch = (min_ts / kSecondsPerDay) * kSecondsPerDay;
    for (auto& r : out.requests) r.timestamp -= epoch;
  }
  out.finalize();
  return stats;
}

void write_clf(std::ostream& os, const Trace& trace) {
  for (const auto& r : trace.requests) {
    ClfEntry e;
    e.host = std::string(trace.clients.name(r.client));
    e.timestamp = r.timestamp;
    e.method = r.method;
    e.path = std::string(trace.urls.name(r.url));
    e.status = r.status;
    e.size_bytes = r.size_bytes;
    os << format_clf_line(e) << '\n';
  }
}

}  // namespace webppm::trace
