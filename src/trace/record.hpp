// Core trace representation: a time-ordered sequence of HTTP requests with
// interned URL and client identifiers, as produced by the CLF reader or the
// synthetic workload generator.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "util/intern.hpp"
#include "util/types.hpp"

namespace webppm::trace {

enum class Method : std::uint8_t { kGet, kHead, kPost, kOther };

/// One logged HTTP request (one Common Log Format line).
struct Request {
  TimeSec timestamp = 0;        ///< seconds since trace epoch
  ClientId client = 0;          ///< interned remote host
  UrlId url = 0;                ///< interned request path
  std::uint32_t size_bytes = 0; ///< response body size
  std::uint16_t status = 200;   ///< HTTP status code
  Method method = Method::kGet;

  friend bool operator==(const Request&, const Request&) = default;
};

/// Resource classes relevant to the paper's embedded-object folding rule.
enum class ResourceKind : std::uint8_t { kHtml, kImage, kOther };

/// Classifies a URL path by extension using the paper's lists (§2.2):
/// HTML = .html/.htm/.shtml (plus a bare or directory path, which servers
/// resolve to an index page); images = .gif/.jpg/.jpeg/... (full list).
ResourceKind classify_resource(std::string_view url_path);

/// A complete trace: requests in non-decreasing timestamp order plus the
/// intern tables and per-URL metadata the models and simulator need.
class Trace {
 public:
  std::vector<Request> requests;
  util::InternTable urls;
  util::InternTable clients;

  /// Sorts requests by (timestamp, client) and rebuilds the per-URL size
  /// table. Call after bulk construction and before analysis.
  void finalize();

  /// Representative (maximum observed) response size for a URL; the server
  /// uses this when deciding whether a document fits the prefetch size
  /// threshold. Returns 0 for URLs never seen with a body.
  std::uint32_t url_size(UrlId url) const {
    return url < url_sizes_.size() ? url_sizes_[url] : 0;
  }

  /// Day index (0-based) of a timestamp relative to the trace epoch.
  static std::uint32_t day_of(TimeSec t) {
    return static_cast<std::uint32_t>(t / kSecondsPerDay);
  }

  /// Number of whole days covered: 1 + day_of(last timestamp); 0 if empty.
  std::uint32_t day_count() const;

  /// Requests whose day index is exactly `day`.
  std::span<const Request> day_slice(std::uint32_t day) const;

  /// Requests with day index in [first_day, last_day] inclusive.
  std::span<const Request> day_range(std::uint32_t first_day,
                                     std::uint32_t last_day) const;

 private:
  std::vector<std::uint32_t> url_sizes_;
  std::vector<std::size_t> day_offsets_;  // day_offsets_[d] = first index of day d
};

}  // namespace webppm::trace
