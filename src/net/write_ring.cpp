#include "net/write_ring.hpp"

#include <sys/socket.h>
#include <sys/uio.h>

#include <algorithm>
#include <cassert>
#include <cstring>

namespace webppm::net {

void WriteRing::ensure(std::size_t extra) {
  if (buf_.size() - size_ >= extra && !buf_.empty()) return;
  std::size_t cap = buf_.empty() ? 4096 : buf_.size();
  while (cap - size_ < extra) cap *= 2;
  // Grow by linearizing: copy the (at most two) pending segments to the
  // front of the new storage so head_ restarts at 0.
  std::vector<std::uint8_t> next(cap);
  const std::size_t first = std::min(size_, buf_.size() - head_);
  if (first > 0) std::memcpy(next.data(), buf_.data() + head_, first);
  if (size_ > first) {
    std::memcpy(next.data() + first, buf_.data(), size_ - first);
  }
  buf_.swap(next);
  head_ = 0;
}

void WriteRing::push(const void* data, std::size_t n) {
  if (n == 0) return;
  ensure(n);
  const auto* src = static_cast<const std::uint8_t*>(data);
  const std::size_t tail = (head_ + size_) & mask();
  const std::size_t first = std::min(n, buf_.size() - tail);
  std::memcpy(buf_.data() + tail, src, first);
  if (n > first) std::memcpy(buf_.data(), src + first, n - first);
  size_ += n;
}

void WriteRing::push_u16(std::uint16_t v) {
  const std::uint8_t b[2] = {static_cast<std::uint8_t>(v & 0xff),
                             static_cast<std::uint8_t>(v >> 8)};
  push(b, sizeof b);
}

void WriteRing::push_u32(std::uint32_t v) {
  std::uint8_t b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<std::uint8_t>(v >> (8 * i));
  push(b, sizeof b);
}

void WriteRing::push_u64(std::uint64_t v) {
  std::uint8_t b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<std::uint8_t>(v >> (8 * i));
  push(b, sizeof b);
}

void WriteRing::patch_u16(std::uint64_t at, std::uint16_t v) {
  assert(at >= consumed_ && at + 2 <= consumed_ + size_);
  const std::size_t base = head_ + static_cast<std::size_t>(at - consumed_);
  buf_[base & mask()] = static_cast<std::uint8_t>(v & 0xff);
  buf_[(base + 1) & mask()] = static_cast<std::uint8_t>(v >> 8);
}

void WriteRing::patch_u32(std::uint64_t at, std::uint32_t v) {
  assert(at >= consumed_ && at + 4 <= consumed_ + size_);
  const std::size_t base = head_ + static_cast<std::size_t>(at - consumed_);
  for (int i = 0; i < 4; ++i) {
    buf_[(base + static_cast<std::size_t>(i)) & mask()] =
        static_cast<std::uint8_t>(v >> (8 * i));
  }
}

ssize_t WriteRing::flush(int fd, std::size_t limit) {
  if (size_ == 0) return 0;
  std::size_t want = limit == 0 ? size_ : std::min(limit, size_);
  iovec iov[2];
  int iovcnt = 0;
  const std::size_t first = std::min(want, buf_.size() - head_);
  iov[iovcnt++] = {buf_.data() + head_, first};
  if (want > first) iov[iovcnt++] = {buf_.data(), want - first};
  msghdr msg{};
  msg.msg_iov = iov;
  msg.msg_iovlen = static_cast<std::size_t>(iovcnt);
  // MSG_NOSIGNAL everywhere a socket is written: a peer that already
  // closed must surface as EPIPE, never as a process-killing SIGPIPE.
  const ssize_t n = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
  if (n <= 0) return n;
  head_ = (head_ + static_cast<std::size_t>(n)) & mask();
  size_ -= static_cast<std::size_t>(n);
  consumed_ += static_cast<std::uint64_t>(n);
  if (size_ == 0) head_ = 0;  // drained: restart contiguous
  return n;
}

void WriteRing::clear() {
  consumed_ += size_;
  head_ = 0;
  size_ = 0;
}

std::vector<std::uint8_t> WriteRing::pending_bytes() const {
  std::vector<std::uint8_t> out(size_);
  if (size_ == 0) return out;
  const std::size_t first = std::min(size_, buf_.size() - head_);
  std::memcpy(out.data(), buf_.data() + head_, first);
  if (size_ > first) {
    std::memcpy(out.data() + first, buf_.data(), size_ - first);
  }
  return out;
}

}  // namespace webppm::net
