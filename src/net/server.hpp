// webppm::net::PredictServer — the epoll TCP front-end of serve::ModelServer
// (DESIGN.md §10).
//
// Thread model: one acceptor thread owns the listen socket (and the text
// admin listener) in its own epoll set; `workers` loop threads each own an
// epoll set of connection fds. The acceptor dispatches accepted fds
// round-robin through a per-worker inbox + eventfd wake; after dispatch a
// connection lives and dies entirely on its worker thread — no fd is ever
// shared between threads. Prediction itself delegates to the caller's
// serve::ModelServer, whose query path is already thread-safe.
//
// Backpressure and protection are first-class:
//   * bounded per-connection write queue — a client that stops reading
//     while responses accumulate past `max_write_queue_bytes` is
//     disconnected (slow-client shed), never buffered without bound;
//   * idle-connection timeout via a lazy timing wheel per worker;
//   * `max_connections` cap — an accept over the cap is answered with one
//     Status::kRetryLater frame and closed, mirroring the serve layer's
//     shed-with-fallback degradation contract (retryable, not an error);
//   * hardened framing — an invalid frame gets a Status::kBadRequest
//     response and a drain-then-close, and a header-claimed length is
//     capped before any body byte is read (see wire.hpp);
//   * graceful drain-then-stop shutdown — stop accepting, stop reading,
//     flush queued responses for up to `drain_timeout_ms`, then close.
//
// The admin listener speaks just enough HTTP/1.0 for a scraper:
// GET /metrics returns the shared Prometheus exposition
// (serve::render_metrics_exposition — the same code path
// serve::MetricsReporter writes, so the two can never drift),
// GET /healthz reports ok / drift / degraded / no-model / draining,
// GET /snapshot reports what the box is serving (version, model name,
// node count, storage bytes, degraded flag) one field per line, and
// GET /scoreboard returns the prediction-quality scoreboard JSON
// (serve::ModelServer::scoreboard_json; 503 when not armed).
//
// Stage attribution: 1 in kStageSampleEvery frames per connection times
// each hot-path stage — queue (read() return → frame pickup), decode,
// predict (the model_ call; its shard-lock wait is already broken out as
// webppm_serve_shard_lock_wait_ns), serialize, and the following flush —
// into webppm_net_stage_*_ns log2 histograms. Unsampled frames pay two
// clock reads at most (the existing request-latency pair).
//
// Fault sites (chaos suite): net.accept (accepted fd dropped),
// net.conn.read / net.conn.write (short read/write: 1 byte this round),
// net.conn.stall (skip or delay one readiness event).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/event_loop.hpp"
#include "net/wire.hpp"
#include "obs/metrics.hpp"
#include "serve/model_server.hpp"

namespace webppm::net {

struct NetServerConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;        ///< 0 = ephemeral; read back via port()
  bool admin = true;  ///< serve /metrics, /healthz and /snapshot
  std::uint16_t admin_port = 0;  ///< 0 = ephemeral; read via admin_port()
  std::size_t workers = 2;       ///< loop-worker threads (>= 1)
  /// Connection cap across all workers; an accept over it is shed with one
  /// Status::kRetryLater frame (0 = unbounded).
  std::size_t max_connections = 1024;
  /// Per-connection pending-write cap; exceeding it disconnects the slow
  /// client (0 = unbounded — never use in production).
  std::size_t max_write_queue_bytes = 256 * 1024;
  /// Idle-connection timeout (0 disables the wheel).
  std::uint64_t idle_timeout_ms = 30'000;
  /// Reject frames whose header claims more than this many body bytes.
  std::uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Per-connection kernel send-buffer size (SO_SNDBUF; 0 keeps the OS
  /// default). Small values make max_write_queue_bytes bite early — with
  /// the default auto-tuned sndbuf the kernel happily buffers megabytes
  /// before the user-space queue ever grows.
  int sndbuf_bytes = 0;
  /// Flush budget of the drain-then-stop shutdown.
  std::uint64_t drain_timeout_ms = 1'000;
  /// Non-null attaches webppm_net_* metrics (counters mirror the exact
  /// atomic accessors below; plus the request-latency histogram).
  obs::MetricsRegistry* metrics = nullptr;
};

/// Wire status for one query outcome — the shared core of
/// make_wire_response and the batched response writer, so a v2 sub-response
/// and a v1 single frame for the same query can never disagree:
/// predicted → kOk (kDegraded when the fallback answered); otherwise
/// kNoModel before the first publish, kOk-with-empty-list for a skipped
/// error request, kError for a refusal (e.g. an injected serve.query
/// fault).
Status wire_status(const serve::QueryResult& qr, std::uint8_t flags,
                   std::uint64_t snapshot_version);

/// The one request→response mapping, shared by the server's connection
/// handler and by anything reproducing server answers in-process (the
/// net_throughput byte-identity gate): given what ModelServer said about a
/// query, build the wire response.
WireResponse make_wire_response(const serve::QueryResult& qr,
                                const WireRequest& req,
                                std::uint64_t snapshot_version,
                                std::vector<ppm::Prediction> predictions);

/// The request a WireRequest stands for, as ModelServer consumes it.
trace::Request to_trace_request(const WireRequest& w);

class PredictServer {
 public:
  /// `model` must outlive the server. Nothing starts until start().
  PredictServer(serve::ModelServer& model, NetServerConfig config = {});
  ~PredictServer();

  PredictServer(const PredictServer&) = delete;
  PredictServer& operator=(const PredictServer&) = delete;

  /// Binds, listens and spawns the acceptor + worker threads. False on
  /// failure with `*error` set. Call at most once.
  bool start(std::string* error = nullptr);

  /// Drain-then-stop: stop accepting, stop reading, flush pending writes
  /// up to drain_timeout_ms, close everything, join threads. Idempotent;
  /// the destructor calls it.
  void shutdown();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Bound ports (valid after a successful start()).
  std::uint16_t port() const { return port_; }
  std::uint16_t admin_port() const { return admin_port_; }

  const NetServerConfig& config() const { return config_; }

  // Exact counters, maintained whether or not a registry is attached (the
  // attached webppm_net_* metrics mirror them one-to-one).
  std::uint64_t accepted() const { return accepted_.load(std::memory_order_relaxed); }
  std::uint64_t closed() const { return closed_.load(std::memory_order_relaxed); }
  std::size_t active_connections() const { return active_.load(std::memory_order_relaxed); }
  std::uint64_t requests() const { return requests_.load(std::memory_order_relaxed); }
  std::uint64_t responses() const { return responses_.load(std::memory_order_relaxed); }
  std::uint64_t protocol_errors() const { return protocol_errors_.load(std::memory_order_relaxed); }
  std::uint64_t shed() const { return shed_.load(std::memory_order_relaxed); }
  std::uint64_t slow_client_disconnects() const { return slow_disconnects_.load(std::memory_order_relaxed); }
  std::uint64_t idle_timeouts() const { return idle_timeouts_.load(std::memory_order_relaxed); }
  std::uint64_t accept_failures() const { return accept_failures_.load(std::memory_order_relaxed); }
  std::uint64_t short_reads() const { return short_reads_.load(std::memory_order_relaxed); }
  std::uint64_t short_writes() const { return short_writes_.load(std::memory_order_relaxed); }
  std::uint64_t stalls() const { return stalls_.load(std::memory_order_relaxed); }
  std::uint64_t admin_requests() const { return admin_requests_.load(std::memory_order_relaxed); }
  /// v2 batch frames served (each counts its sub-requests in requests()).
  std::uint64_t batches() const { return batches_.load(std::memory_order_relaxed); }
  /// Batch sub-entries answered kBadRequest in their slot (unknown flag
  /// bits) — the batch and connection survive.
  std::uint64_t batch_entry_errors() const { return batch_entry_errors_.load(std::memory_order_relaxed); }
  /// Predictions dropped by the u16 per-response count clamp.
  std::uint64_t responses_truncated() const { return responses_truncated_.load(std::memory_order_relaxed); }
  /// v3 observe frames served (no response is written for them).
  std::uint64_t observe_frames() const { return observe_frames_.load(std::memory_order_relaxed); }
  /// Observe-frame entries fed into ModelServer::observe.
  std::uint64_t observes() const { return observes_.load(std::memory_order_relaxed); }
  /// Observe-frame entries skipped for unknown flag bits (the frame and
  /// connection survive, like a bad batch slot — but with no response to
  /// degrade, the entry is counted and dropped).
  std::uint64_t observe_entry_errors() const { return observe_entry_errors_.load(std::memory_order_relaxed); }

 private:
  struct Worker;
  struct Connection;
  struct AdminConn;

  void acceptor_main();
  void worker_main(Worker& w);

  void handle_accept(int listen_fd);
  void dispatch(int fd);
  void shed_connection(int fd);

  // Worker-side connection machinery (all run on the owning worker).
  void conn_readable(Worker& w, Connection& c);
  void conn_writable(Worker& w, Connection& c);
  bool conn_flush(Connection& c);  ///< false = fatal write error
  bool conn_flush_impl(Connection& c);  ///< conn_flush sans stage timing
  void conn_process_frames(Connection& c);
  /// Serves one v2 batch frame: decode, query_batch, serialize straight
  /// into the connection's write ring. Returns a reject reason when the
  /// frame itself is malformed (empty string = served).
  std::string conn_handle_batch(Connection& c,
                                std::span<const std::uint8_t> body);
  /// Serves one v3 observe frame: decode and feed every entry into
  /// ModelServer::observe. One-way — nothing is written back. Returns a
  /// reject reason when the frame is malformed (empty string = served).
  std::string conn_handle_observe(Connection& c,
                                  std::span<const std::uint8_t> body);
  void conn_update_interest(Worker& w, Connection& c);
  void close_conn(Worker& w, int fd);
  void arm_idle(Worker& w, const Connection& c);

  // Acceptor-side admin machinery.
  void admin_readable(AdminConn& a);
  void admin_writable(AdminConn& a);
  std::string admin_response(const std::string& request_line);
  void close_admin(int fd);

  struct Instruments;
  void count(obs::Counter* Instruments::*which,
             std::atomic<std::uint64_t>& exact, std::uint64_t n = 1);

  serve::ModelServer& model_;
  NetServerConfig config_;

  OwnedFd listen_fd_{};
  OwnedFd admin_fd_{};
  std::uint16_t port_ = 0;
  std::uint16_t admin_port_ = 0;

  std::unique_ptr<EventLoop> accept_loop_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::unordered_map<int, std::unique_ptr<AdminConn>> admin_conns_;
  std::size_t next_worker_ = 0;

  std::thread accept_thread_;
  std::vector<std::thread> worker_threads_;

  std::atomic<bool> started_{false};
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  std::atomic<std::uint64_t> accepted_{0}, closed_{0}, requests_{0},
      responses_{0}, protocol_errors_{0}, shed_{0}, slow_disconnects_{0},
      idle_timeouts_{0}, accept_failures_{0}, short_reads_{0},
      short_writes_{0}, stalls_{0}, admin_requests_{0}, batches_{0},
      batch_entry_errors_{0}, responses_truncated_{0}, observe_frames_{0},
      observes_{0}, observe_entry_errors_{0};
  std::atomic<std::size_t> active_{0};

  std::unique_ptr<Instruments> ins_;
};

}  // namespace webppm::net
