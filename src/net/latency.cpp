#include "net/latency.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/samplers.hpp"

namespace webppm::net {

LatencyModel fit_latency_model(const std::vector<LatencyObservation>& obs) {
  assert(obs.size() >= 2);
  std::vector<double> xs, ys;
  xs.reserve(obs.size());
  ys.reserve(obs.size());
  for (const auto& o : obs) {
    xs.push_back(o.size_bytes);
    ys.push_back(o.latency_seconds);
  }
  const auto fit = util::least_squares_fit(xs, ys);
  return LatencyModel(std::max(0.0, fit.intercept), std::max(0.0, fit.slope));
}

std::vector<LatencyObservation> sample_latency_observations(
    const LatencySamplerConfig& config, const std::vector<double>& sizes) {
  util::Rng rng(config.seed);
  std::vector<LatencyObservation> obs;
  obs.reserve(sizes.size());
  for (const double s : sizes) {
    const double base =
        config.connect_seconds + s / config.bandwidth_bytes_per_sec;
    const double noise =
        std::exp(config.noise_sigma * util::sample_standard_normal(rng) -
                 0.5 * config.noise_sigma * config.noise_sigma);
    obs.push_back({s, base * noise});
  }
  return obs;
}

LatencyModel calibrated_latency_model(const LatencySamplerConfig& config,
                                      std::size_t observations) {
  util::Rng rng(config.seed ^ 0x5eedull);
  std::vector<double> sizes;
  sizes.reserve(observations);
  const double lo = std::log(1024.0), hi = std::log(1024.0 * 1024.0);
  for (std::size_t i = 0; i < observations; ++i) {
    sizes.push_back(std::exp(lo + (hi - lo) * rng.uniform()));
  }
  return fit_latency_model(sample_latency_observations(config, sizes));
}

}  // namespace webppm::net
