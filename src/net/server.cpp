#include "net/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <mutex>

#include "fault/fault.hpp"
#include "obs/trace_event.hpp"
#include "serve/metrics_reporter.hpp"

namespace webppm::net {
namespace {

/// Epoll dispatch tag: every pointer registered with an EventLoop (other
/// than the loop's own wake tag) points at one of these, embedded first in
/// the concrete per-fd state so the event handler can downcast.
struct EvTag {
  enum class Kind : std::uint8_t { kListen, kAdminListen, kAdminConn, kConn };
  Kind kind;
};

std::string errno_string() { return std::strerror(errno); }

/// Binds a nonblocking listen socket on host:port (port 0 = ephemeral).
/// Returns the bound port via *bound_port; empty error string on success.
std::string open_listener(const std::string& host, std::uint16_t port,
                          OwnedFd& out, std::uint16_t* bound_port) {
  OwnedFd fd(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                      0));
  if (!fd.valid()) return "socket: " + errno_string();
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return "inet_pton " + host + ": invalid address";
  }
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
    return "bind " + host + ":" + std::to_string(port) + ": " +
           errno_string();
  }
  if (::listen(fd.get(), 128) != 0) return "listen: " + errno_string();
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    return "getsockname: " + errno_string();
  }
  *bound_port = ntohs(bound.sin_port);
  out = std::move(fd);
  return {};
}

constexpr std::size_t kReadChunkBytes = 16 * 1024;
constexpr std::size_t kAdminRequestCapBytes = 4 * 1024;
constexpr int kLoopTickMs = 100;  ///< upper bound on stop-flag latency

/// Per-connection stage-attribution cadence: 1 in this many frames times
/// every pipeline stage. The first frame of a connection is always sampled
/// so short-lived test connections land in the histograms.
constexpr std::uint32_t kStageSampleEvery = 64;

}  // namespace

struct PredictServer::Connection {
  EvTag tag{EvTag::Kind::kConn};
  int fd = -1;
  std::vector<std::uint8_t> in;    ///< unparsed request bytes
  WriteRing out;                   ///< unflushed response bytes
  bool close_after_flush = false;  ///< protocol error or drain: no reads
  bool want_read = true;
  std::uint32_t interest = 0;      ///< epoll events currently registered
  std::uint64_t last_activity_ms = 0;
  std::uint32_t stage_tick = 0;        ///< stage-sampling cadence counter
  bool stage_flush_sample = false;     ///< sampled frame: time the next flush
  std::uint64_t read_done_ns = 0;      ///< when the delivering read() returned

  std::size_t pending_out() const { return out.pending(); }
};

struct PredictServer::AdminConn {
  EvTag tag{EvTag::Kind::kAdminConn};
  int fd = -1;
  std::string in;
  std::string out;
  std::size_t out_pos = 0;
};

struct PredictServer::Worker {
  std::size_t index = 0;
  EventLoop loop;
  std::unordered_map<int, std::unique_ptr<Connection>> conns;
  TimeoutWheel wheel;
  std::mutex inbox_mu;
  std::vector<int> inbox;  ///< fds dispatched by the acceptor

  Worker(std::size_t idx, std::uint64_t idle_timeout_ms)
      : index(idx),
        wheel(idle_timeout_ms == 0
                  ? 1000
                  : std::max<std::uint64_t>(10, idle_timeout_ms / 8),
              64, now_ms()) {}
};

struct PredictServer::Instruments {
  obs::Counter* accepted;
  obs::Counter* closed;
  obs::Counter* requests;
  obs::Counter* responses;
  obs::Counter* protocol_errors;
  obs::Counter* shed;
  obs::Counter* slow_disconnects;
  obs::Counter* idle_timeouts;
  obs::Counter* accept_failures;
  obs::Counter* short_reads;
  obs::Counter* short_writes;
  obs::Counter* stalls;
  obs::Counter* admin_requests;
  obs::Counter* batches;
  obs::Counter* batch_entry_errors;
  obs::Counter* responses_truncated;
  obs::Counter* observe_frames;
  obs::Counter* observes;
  obs::Counter* observe_entry_errors;
  obs::Counter* bytes_read;
  obs::Counter* bytes_written;
  obs::Gauge* active;
  obs::LogHistogram* request_latency;
  // Sampled per-stage latency attribution (see kStageSampleEvery).
  obs::LogHistogram* stage_queue;
  obs::LogHistogram* stage_decode;
  obs::LogHistogram* stage_predict;
  obs::LogHistogram* stage_serialize;
  obs::LogHistogram* stage_flush;
};

Status wire_status(const serve::QueryResult& qr, std::uint8_t flags,
                   std::uint64_t snapshot_version) {
  if (qr.predicted) {
    return qr.served == serve::ServedBy::kFallback ? Status::kDegraded
                                                   : Status::kOk;
  }
  if (snapshot_version == 0) return Status::kNoModel;
  if ((flags & kFlagErrorStatus) != 0) {
    // The server skips error requests by design (the simulator's piggyback
    // path does the same); an empty OK list is the expected answer.
    return Status::kOk;
  }
  return Status::kError;  // refused (e.g. injected serve.query)
}

WireResponse make_wire_response(const serve::QueryResult& qr,
                                const WireRequest& req,
                                std::uint64_t snapshot_version,
                                std::vector<ppm::Prediction> predictions) {
  WireResponse resp;
  resp.snapshot_version = snapshot_version;
  resp.status = wire_status(qr, req.flags, snapshot_version);
  if (qr.predicted) resp.predictions = std::move(predictions);
  return resp;
}

trace::Request to_trace_request(const WireRequest& w) {
  trace::Request r;
  r.timestamp = w.timestamp;
  r.client = w.client;
  r.url = w.url;
  r.status = (w.flags & kFlagErrorStatus) != 0 ? 404 : 200;
  return r;
}

PredictServer::PredictServer(serve::ModelServer& model, NetServerConfig config)
    : model_(model), config_(std::move(config)) {
  if (config_.workers == 0) config_.workers = 1;
  if (config_.max_frame_bytes == 0) config_.max_frame_bytes = kDefaultMaxFrameBytes;
  if (config_.metrics != nullptr) {
    auto& reg = *config_.metrics;
    ins_ = std::make_unique<Instruments>(Instruments{
        &reg.counter("webppm_net_connections_accepted_total"),
        &reg.counter("webppm_net_connections_closed_total"),
        &reg.counter("webppm_net_requests_total"),
        &reg.counter("webppm_net_responses_total"),
        &reg.counter("webppm_net_protocol_errors_total"),
        &reg.counter("webppm_net_shed_total"),
        &reg.counter("webppm_net_slow_client_disconnects_total"),
        &reg.counter("webppm_net_idle_timeouts_total"),
        &reg.counter("webppm_net_accept_failures_total"),
        &reg.counter("webppm_net_short_reads_total"),
        &reg.counter("webppm_net_short_writes_total"),
        &reg.counter("webppm_net_stalls_total"),
        &reg.counter("webppm_net_admin_requests_total"),
        &reg.counter("webppm_net_batches_total"),
        &reg.counter("webppm_net_batch_entry_errors_total"),
        &reg.counter("webppm_net_response_truncated_total"),
        &reg.counter("webppm_net_observe_frames_total"),
        &reg.counter("webppm_net_observes_total"),
        &reg.counter("webppm_net_observe_entry_errors_total"),
        &reg.counter("webppm_net_bytes_read_total"),
        &reg.counter("webppm_net_bytes_written_total"),
        &reg.gauge("webppm_net_connections_active"),
        &reg.histogram("webppm_net_request_latency_ns"),
        &reg.histogram("webppm_net_stage_queue_ns"),
        &reg.histogram("webppm_net_stage_decode_ns"),
        &reg.histogram("webppm_net_stage_predict_ns"),
        &reg.histogram("webppm_net_stage_serialize_ns"),
        &reg.histogram("webppm_net_stage_flush_ns"),
    });
  }
}

PredictServer::~PredictServer() { shutdown(); }

void PredictServer::count(obs::Counter* Instruments::*which,
                          std::atomic<std::uint64_t>& exact, std::uint64_t n) {
  exact.fetch_add(n, std::memory_order_relaxed);
  if (ins_ != nullptr) ((*ins_).*which)->add(n);
}

bool PredictServer::start(std::string* error) {
  if (started_.exchange(true)) {
    if (error != nullptr) *error = "already started";
    return false;
  }
  std::string err = open_listener(config_.host, config_.port, listen_fd_,
                                  &port_);
  if (err.empty() && config_.admin) {
    err = open_listener(config_.host, config_.admin_port, admin_fd_,
                        &admin_port_);
  }
  accept_loop_ = std::make_unique<EventLoop>();
  if (err.empty() && !accept_loop_->ok()) err = accept_loop_->error();
  for (std::size_t i = 0; err.empty() && i < config_.workers; ++i) {
    workers_.push_back(std::make_unique<Worker>(i, config_.idle_timeout_ms));
    if (!workers_.back()->loop.ok()) err = workers_.back()->loop.error();
  }
  if (!err.empty()) {
    if (error != nullptr) *error = err;
    obs::log_event(obs::Severity::kError, "net.start_failed", err);
    return false;
  }

  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { acceptor_main(); });
  for (auto& w : workers_) {
    worker_threads_.emplace_back([this, &w] { worker_main(*w); });
  }
  return true;
}

void PredictServer::shutdown() {
  if (!started_.load(std::memory_order_acquire)) return;
  if (stopping_.exchange(true)) {
    // Second caller (e.g. the destructor after an explicit shutdown): just
    // make sure the threads are gone.
  } else {
    if (accept_loop_ != nullptr) accept_loop_->wake();
    for (auto& w : workers_) w->loop.wake();
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  for (auto& t : worker_threads_) {
    if (t.joinable()) t.join();
  }
  running_.store(false, std::memory_order_release);
}

// ---------------------------------------------------------------------------
// Acceptor thread: listen fd + admin listener + admin connections.

void PredictServer::acceptor_main() {
  static EvTag listen_tag{EvTag::Kind::kListen};
  static EvTag admin_listen_tag{EvTag::Kind::kAdminListen};
  accept_loop_->add(listen_fd_.get(), EPOLLIN, &listen_tag);
  if (admin_fd_.valid()) {
    accept_loop_->add(admin_fd_.get(), EPOLLIN, &admin_listen_tag);
  }

  std::vector<epoll_event> events;
  while (!stopping_.load(std::memory_order_acquire)) {
    const int n = accept_loop_->wait(kLoopTickMs, events);
    for (int i = 0; i < n; ++i) {
      void* data = events[static_cast<std::size_t>(i)].data.ptr;
      if (data == accept_loop_->wake_tag()) {
        accept_loop_->drain_wake();
        continue;
      }
      auto* tag = static_cast<EvTag*>(data);
      switch (tag->kind) {
        case EvTag::Kind::kListen:
          handle_accept(listen_fd_.get());
          break;
        case EvTag::Kind::kAdminListen:
          handle_accept(admin_fd_.get());
          break;
        case EvTag::Kind::kAdminConn: {
          auto* a = reinterpret_cast<AdminConn*>(tag);
          const auto ev = events[static_cast<std::size_t>(i)].events;
          if ((ev & (EPOLLHUP | EPOLLERR)) != 0) {
            close_admin(a->fd);
          } else if ((ev & EPOLLIN) != 0) {
            admin_readable(*a);
          } else if ((ev & EPOLLOUT) != 0) {
            admin_writable(*a);
          }
          break;
        }
        case EvTag::Kind::kConn:
          break;  // connections never live on the acceptor loop
      }
    }
  }
  // Stop accepting immediately; pending admin conversations just close
  // (scrapers retry; the drain budget belongs to prediction clients).
  for (auto& [fd, conn] : admin_conns_) {
    accept_loop_->del(fd);
    ::close(fd);
  }
  admin_conns_.clear();
  listen_fd_.reset();
  admin_fd_.reset();
}

void PredictServer::handle_accept(int listen_fd) {
  const bool is_admin = admin_fd_.valid() && listen_fd == admin_fd_.get();
  while (true) {
    const int fd = ::accept4(listen_fd, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
        count(&Instruments::accept_failures, accept_failures_);
      }
      return;
    }
    if (WEBPPM_FAULT_INJECT("net.accept")) {
      // Scripted accept failure: the kernel handed us a connection and the
      // server "fails" it — counted, closed, and visible to chaos gates.
      count(&Instruments::accept_failures, accept_failures_);
      ::close(fd);
      continue;
    }
    if (is_admin) {
      auto a = std::make_unique<AdminConn>();
      a->fd = fd;
      accept_loop_->add(fd, EPOLLIN, &a->tag);
      admin_conns_.emplace(fd, std::move(a));
      continue;
    }
    if (config_.max_connections != 0 &&
        active_.load(std::memory_order_relaxed) >= config_.max_connections) {
      shed_connection(fd);
      continue;
    }
    dispatch(fd);
  }
}

void PredictServer::shed_connection(int fd) {
  // Over the cap: answer with one retryable frame, then close. Mirrors the
  // serve layer's shard-cap shed — the client is told to back off, not
  // left to diagnose a silent RST.
  WireResponse resp;
  resp.status = Status::kRetryLater;
  resp.snapshot_version = model_.version();
  std::vector<std::uint8_t> frame;
  encode_response(resp, frame);
  // Best-effort single write: the frame is far below any socket buffer, so
  // a fresh connection either takes it whole or is already broken.
  // MSG_NOSIGNAL everywhere a socket is written: a peer that already
  // closed must surface as EPIPE, never as a process-killing SIGPIPE.
  [[maybe_unused]] const ssize_t n =
      ::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL);
  ::close(fd);
  count(&Instruments::shed, shed_);
}

void PredictServer::dispatch(int fd) {
  // The protocol is request/response ping-pong; without TCP_NODELAY every
  // closed-loop exchange eats a Nagle/delayed-ACK stall.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  if (config_.sndbuf_bytes > 0) {
    ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &config_.sndbuf_bytes,
                 sizeof config_.sndbuf_bytes);
  }
  count(&Instruments::accepted, accepted_);
  active_.fetch_add(1, std::memory_order_relaxed);
  if (ins_ != nullptr) ins_->active->add(1);
  Worker& w = *workers_[next_worker_];
  next_worker_ = (next_worker_ + 1) % workers_.size();
  {
    std::lock_guard lock(w.inbox_mu);
    w.inbox.push_back(fd);
  }
  w.loop.wake();
}

// ---------------------------------------------------------------------------
// Worker threads.

void PredictServer::worker_main(Worker& w) {
  std::vector<epoll_event> events;
  std::uint64_t drain_deadline = 0;

  while (true) {
    const bool stopping = stopping_.load(std::memory_order_acquire);
    if (stopping) {
      if (drain_deadline == 0) {
        // Drain phase entered: no more reads, flush what is queued.
        drain_deadline = now_ms() + config_.drain_timeout_ms;
        std::vector<int> done;
        for (auto& [fd, c] : w.conns) {
          c->want_read = false;
          c->close_after_flush = true;
          if (c->pending_out() == 0) done.push_back(fd);
        }
        for (const int fd : done) close_conn(w, fd);
        for (auto& [fd, c] : w.conns) conn_update_interest(w, *c);
      }
      if (w.conns.empty() || now_ms() >= drain_deadline) break;
    }

    int timeout = kLoopTickMs;
    if (config_.idle_timeout_ms != 0) {
      const int wheel_ms = w.wheel.next_timeout_ms(now_ms());
      if (wheel_ms >= 0 && wheel_ms < timeout) timeout = wheel_ms;
    }
    const int n = w.loop.wait(timeout, events);

    for (int i = 0; i < n; ++i) {
      void* data = events[static_cast<std::size_t>(i)].data.ptr;
      if (data == w.loop.wake_tag()) {
        w.loop.drain_wake();
        continue;
      }
      auto* c = reinterpret_cast<Connection*>(static_cast<EvTag*>(data));
      const int cfd = c->fd;  // c may be freed by conn_readable below
      const auto ev = events[static_cast<std::size_t>(i)].events;
      if ((ev & (EPOLLHUP | EPOLLERR)) != 0) {
        close_conn(w, cfd);
        continue;
      }
      if ((ev & EPOLLIN) != 0) conn_readable(w, *c);
      // conn_readable may close; look the fd up again before writing.
      if ((ev & EPOLLOUT) != 0) {
        const auto it = w.conns.find(cfd);
        if (it != w.conns.end()) conn_writable(w, *it->second);
      }
    }

    // Adopt connections the acceptor dispatched to us.
    std::vector<int> adopted;
    {
      std::lock_guard lock(w.inbox_mu);
      adopted.swap(w.inbox);
    }
    for (const int fd : adopted) {
      if (stopping_.load(std::memory_order_acquire)) {
        ::close(fd);
        count(&Instruments::closed, closed_);
        active_.fetch_sub(1, std::memory_order_relaxed);
        if (ins_ != nullptr) ins_->active->sub(1);
        continue;
      }
      auto c = std::make_unique<Connection>();
      c->fd = fd;
      c->last_activity_ms = now_ms();
      c->interest = EPOLLIN;
      w.loop.add(fd, c->interest, &c->tag);
      if (config_.idle_timeout_ms != 0) arm_idle(w, *c);
      w.conns.emplace(fd, std::move(c));
    }

    // Idle sweep: wheel entries are hints — re-check the authoritative
    // deadline, close the truly idle, re-arm the rest.
    if (config_.idle_timeout_ms != 0) {
      const std::uint64_t now = now_ms();
      w.wheel.advance(now, [&](std::uint64_t key) {
        const auto it = w.conns.find(static_cast<int>(key));
        if (it == w.conns.end()) return;  // closed since scheduling
        Connection& c = *it->second;
        if (now >= c.last_activity_ms + config_.idle_timeout_ms) {
          count(&Instruments::idle_timeouts, idle_timeouts_);
          obs::log_event(obs::Severity::kInfo, "net.idle_timeout",
                         "connection idle past " +
                             std::to_string(config_.idle_timeout_ms) +
                             " ms");
          close_conn(w, c.fd);
        } else {
          arm_idle(w, c);
        }
      });
    }
  }

  // Stop (drained or out of budget): close whatever remains.
  std::vector<int> rest;
  rest.reserve(w.conns.size());
  for (const auto& [fd, c] : w.conns) rest.push_back(fd);
  for (const int fd : rest) close_conn(w, fd);
}

void PredictServer::arm_idle(Worker& w, const Connection& c) {
  w.wheel.schedule(static_cast<std::uint64_t>(c.fd),
                   c.last_activity_ms + config_.idle_timeout_ms);
}

void PredictServer::close_conn(Worker& w, int fd) {
  const auto it = w.conns.find(fd);
  if (it == w.conns.end()) return;
  w.loop.del(fd);
  ::close(fd);
  w.conns.erase(it);
  count(&Instruments::closed, closed_);
  active_.fetch_sub(1, std::memory_order_relaxed);
  if (ins_ != nullptr) ins_->active->sub(1);
}

void PredictServer::conn_update_interest(Worker& w, Connection& c) {
  std::uint32_t want = 0;
  if (c.want_read && !c.close_after_flush) want |= EPOLLIN;
  if (c.pending_out() > 0) want |= EPOLLOUT;
  if (want != c.interest) {
    c.interest = want;
    w.loop.mod(c.fd, want, &c.tag);
  }
}

void PredictServer::conn_readable(Worker& w, Connection& c) {
  if (WEBPPM_FAULT_INJECT("net.conn.stall")) {
    // Injected stall: skip this readiness event (a delay-mode rule already
    // slept inside the site). Level-triggered epoll re-delivers it.
    count(&Instruments::stalls, stalls_);
    return;
  }
  std::size_t chunk = kReadChunkBytes;
  if (WEBPPM_FAULT_INJECT("net.conn.read")) {
    // Short read: the kernel "returns" a single byte. Data is never lost —
    // the remainder stays queued in the socket — so chaos runs stay
    // byte-identical while every partial-frame path gets exercised.
    chunk = 1;
    count(&Instruments::short_reads, short_reads_);
  }
  const std::size_t old = c.in.size();
  c.in.resize(old + chunk);
  const ssize_t n = ::read(c.fd, c.in.data() + old, chunk);
  if (n <= 0) {
    c.in.resize(old);
    if (n == 0) {
      close_conn(w, c.fd);  // peer closed
    } else if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
      close_conn(w, c.fd);
    }
    return;
  }
  c.in.resize(old + static_cast<std::size_t>(n));
  c.last_activity_ms = now_ms();
  if (config_.idle_timeout_ms != 0) arm_idle(w, c);
  if (ins_ != nullptr) {
    ins_->bytes_read->add(static_cast<std::uint64_t>(n));
    // Queue-stage anchor: frames parsed below queued from this instant
    // (later frames in the same buffer queue behind the earlier ones).
    c.read_done_ns = obs::now_ns();
  }

  conn_process_frames(c);

  if (!conn_flush(c)) {
    close_conn(w, c.fd);
    return;
  }
  if (c.pending_out() > config_.max_write_queue_bytes &&
      config_.max_write_queue_bytes != 0) {
    // Slow client: it keeps sending queries but is not draining responses.
    // Unbounded buffering is how servers fall over; disconnect instead.
    count(&Instruments::slow_disconnects, slow_disconnects_);
    obs::log_event(obs::Severity::kWarn, "net.slow_client_disconnect",
                   std::to_string(c.pending_out()) +
                       " bytes queued exceeds cap " +
                       std::to_string(config_.max_write_queue_bytes));
    close_conn(w, c.fd);
    return;
  }
  if (c.close_after_flush && c.pending_out() == 0) {
    close_conn(w, c.fd);
    return;
  }
  conn_update_interest(w, c);
}

void PredictServer::conn_process_frames(Connection& c) {
  FrameParser parser(config_.max_frame_bytes);
  std::size_t pos = 0;
  while (!c.close_after_flush) {
    const auto frame = parser.next(
        std::span<const std::uint8_t>(c.in).subspan(pos));
    if (frame.result == FrameParser::Result::kNeedMore) break;

    std::string reject;
    if (frame.result == FrameParser::Result::kBad) {
      reject = frame.reason;
    } else if (frame_version(frame.body) == kWireVersionBatch) {
      // v2 batch frame. The version byte is per frame, so one connection
      // may interleave v1 singles and v2 batches freely.
      pos += frame.consumed;
      reject = conn_handle_batch(c, frame.body);
    } else if (frame_version(frame.body) == kWireVersionObserve) {
      // v3 observe frame: feed the trainer tap, write nothing back. A
      // connection may interleave observes with queries (a proxy that
      // predicts for some clients and only reports the rest).
      pos += frame.consumed;
      reject = conn_handle_observe(c, frame.body);
    } else {
      // Stage attribution: a sampled frame times queue → decode → predict
      // → serialize here and marks the connection so the flush that pushes
      // its response is timed too. Unsampled frames keep the original two
      // clock reads.
      const bool stage =
          ins_ != nullptr && (c.stage_tick++ % kStageSampleEvery) == 0;
      const std::uint64_t s0 = stage ? obs::now_ns() : 0;
      WireRequest req;
      const auto err = decode_request(frame.body, req);
      reject = err.reason;
      pos += frame.consumed;
      if (reject.empty()) {
        count(&Instruments::requests, requests_);
        const std::uint64_t q0 = ins_ != nullptr ? obs::now_ns() : 0;
        if (stage) {
          if (c.read_done_ns != 0) {
            ins_->stage_queue->record(s0 - c.read_done_ns);
          }
          ins_->stage_decode->record(q0 - s0);
        }
        thread_local std::vector<ppm::Prediction> preds;
        const auto qr = model_.query_ex(to_trace_request(req), preds);
        const std::uint64_t s2 = stage ? obs::now_ns() : 0;
        if (stage) ins_->stage_predict->record(s2 - q0);
        const auto resp =
            make_wire_response(qr, req, model_.version(), std::move(preds));
        preds = {};
        const std::size_t dropped = encode_response(resp, c.out);
        if (dropped != 0) {
          count(&Instruments::responses_truncated, responses_truncated_,
                dropped);
        }
        if (ins_ != nullptr) {
          const std::uint64_t s3 = obs::now_ns();
          ins_->request_latency->record(s3 - q0);
          if (stage) {
            ins_->stage_serialize->record(s3 - s2);
            c.stage_flush_sample = true;
          }
        }
        count(&Instruments::responses, responses_);
      }
    }
    if (!reject.empty()) {
      // Malformed input never crashes and never passes silently: one
      // structured kBadRequest answer, then drain-and-close (after a
      // framing error the byte stream has no trustworthy resync point).
      count(&Instruments::protocol_errors, protocol_errors_);
      obs::log_event(obs::Severity::kWarn, "net.protocol_error", reject);
      WireResponse resp;
      resp.status = Status::kBadRequest;
      resp.snapshot_version = model_.version();
      encode_response(resp, c.out);
      c.close_after_flush = true;
      c.want_read = false;
      break;
    }
  }
  if (pos > 0) c.in.erase(c.in.begin(), c.in.begin() + static_cast<std::ptrdiff_t>(pos));
}

std::string PredictServer::conn_handle_batch(
    Connection& c, std::span<const std::uint8_t> body) {
  thread_local std::vector<WireRequest> batch;
  thread_local std::vector<trace::Request> treqs;
  thread_local std::vector<std::uint32_t> slot;
  thread_local serve::BatchQueryScratch scratch;

  // A batch frame is one frame on the stage-sampling cadence; its predict
  // stage covers entry validation plus the whole query_batch call.
  const bool stage =
      ins_ != nullptr && (c.stage_tick++ % kStageSampleEvery) == 0;
  const std::uint64_t s0 = stage ? obs::now_ns() : 0;
  const auto err = decode_batch_request(body, batch);
  if (!err.ok()) return err.reason;

  const std::uint64_t q0 = ins_ != nullptr ? obs::now_ns() : 0;
  if (stage) {
    if (c.read_done_ns != 0) ins_->stage_queue->record(s0 - c.read_done_ns);
    ins_->stage_decode->record(q0 - s0);
  }

  // Per-entry validation the frame decoder deliberately leaves to us: an
  // entry with unknown flag bits degrades its own slot to kBadRequest — one
  // bad entry never kills the batch or the connection. (A v1 frame with the
  // same bytes closes the connection; batch clients asked for independent
  // sub-request status, so they get it.)
  constexpr std::uint32_t kBadSlot = 0xffffffffu;
  slot.assign(batch.size(), kBadSlot);
  treqs.clear();
  std::uint64_t bad_entries = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if ((batch[i].flags & ~kFlagErrorStatus) != 0) {
      ++bad_entries;
      continue;
    }
    slot[i] = static_cast<std::uint32_t>(treqs.size());
    treqs.push_back(to_trace_request(batch[i]));
  }

  // One shard lock per shard per batch, one snapshot load, one flat
  // prediction pool — see ModelServer::query_batch.
  model_.query_batch(treqs, scratch);
  const std::uint64_t s2 = stage ? obs::now_ns() : 0;
  if (stage) ins_->stage_predict->record(s2 - q0);

  // Serialize exactly once, straight into the connection's write ring: no
  // per-query WireResponse, no staging buffer, flushes coalesced by the
  // ring's scatter/gather sendmsg.
  BatchResponseWriter writer(c.out);
  writer.begin();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (slot[i] == kBadSlot) {
      writer.add(Status::kBadRequest, scratch.snapshot_version, {});
      continue;
    }
    const auto& item = scratch.items[slot[i]];
    writer.add(
        wire_status(item.result, batch[i].flags, scratch.snapshot_version),
        scratch.snapshot_version, scratch.predictions_of(slot[i]));
  }
  const std::size_t dropped = writer.finish();

  const auto nsub = static_cast<std::uint64_t>(batch.size());
  count(&Instruments::requests, requests_, nsub);
  count(&Instruments::responses, responses_, nsub);
  count(&Instruments::batches, batches_);
  if (bad_entries != 0) {
    count(&Instruments::batch_entry_errors, batch_entry_errors_, bad_entries);
  }
  if (dropped != 0) {
    count(&Instruments::responses_truncated, responses_truncated_, dropped);
  }
  if (ins_ != nullptr) {
    const std::uint64_t s3 = obs::now_ns();
    // Mean per-sub-request latency, so the histogram stays comparable with
    // the per-query samples the v1 path records.
    ins_->request_latency->record((s3 - q0) / nsub);
    if (stage) {
      ins_->stage_serialize->record(s3 - s2);
      c.stage_flush_sample = true;
    }
  }
  return {};
}

std::string PredictServer::conn_handle_observe(
    Connection& c, std::span<const std::uint8_t> body) {
  (void)c;
  thread_local std::vector<WireRequest> obs_batch;
  const auto err = decode_observe_frame(body, obs_batch);
  if (!err.ok()) return err.reason;

  // Same per-entry flag discipline as a batch, minus the response: an entry
  // with unknown flag bits is dropped and counted, the rest of the frame is
  // still absorbed. Malformed frames (caught above) take the usual
  // kBadRequest + drain-and-close path in conn_process_frames.
  std::uint64_t bad_entries = 0;
  for (const auto& entry : obs_batch) {
    if ((entry.flags & ~kFlagErrorStatus) != 0) {
      ++bad_entries;
      continue;
    }
    model_.observe(to_trace_request(entry));
  }
  count(&Instruments::observe_frames, observe_frames_);
  const auto fed = static_cast<std::uint64_t>(obs_batch.size()) - bad_entries;
  if (fed != 0) count(&Instruments::observes, observes_, fed);
  if (bad_entries != 0) {
    count(&Instruments::observe_entry_errors, observe_entry_errors_,
          bad_entries);
  }
  return {};
}

bool PredictServer::conn_flush(Connection& c) {
  // Flush-stage attribution rides the sampled frame: the frame that timed
  // decode/predict/serialize marked the connection, and the flush pushing
  // its response out is timed here.
  if (!c.stage_flush_sample || ins_ == nullptr) return conn_flush_impl(c);
  c.stage_flush_sample = false;
  const std::uint64_t f0 = obs::now_ns();
  const bool ok = conn_flush_impl(c);
  ins_->stage_flush->record(obs::now_ns() - f0);
  return ok;
}

bool PredictServer::conn_flush_impl(Connection& c) {
  while (c.pending_out() > 0) {
    std::size_t limit = 0;  // 0 = everything pending, wrap included
    bool injected_short = false;
    if (WEBPPM_FAULT_INJECT("net.conn.write")) {
      // Short write: one byte goes out, the rest stays queued — the
      // partial-write path runs for real, the byte stream stays intact.
      limit = 1;
      injected_short = true;
      count(&Instruments::short_writes, short_writes_);
    }
    // The ring hands the kernel both physical segments of the pending range
    // in one sendmsg (writev-style), so responses accumulated across many
    // frames coalesce into one syscall.
    const ssize_t n = c.out.flush(c.fd, limit);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
        return true;  // kernel buffer full; EPOLLOUT will resume
      }
      return false;  // broken pipe etc.
    }
    if (ins_ != nullptr) {
      ins_->bytes_written->add(static_cast<std::uint64_t>(n));
    }
    if (injected_short) break;  // leave the remainder for EPOLLOUT
  }
  return true;
}

void PredictServer::conn_writable(Worker& w, Connection& c) {
  if (!conn_flush(c)) {
    close_conn(w, c.fd);
    return;
  }
  if (c.close_after_flush && c.pending_out() == 0) {
    close_conn(w, c.fd);
    return;
  }
  c.last_activity_ms = now_ms();
  conn_update_interest(w, c);
}

// ---------------------------------------------------------------------------
// Admin listener (text): GET /metrics, GET /healthz, GET /snapshot.

std::string PredictServer::admin_response(const std::string& request_line) {
  std::string body;
  std::string status = "200 OK";
  const bool get = request_line.rfind("GET ", 0) == 0;
  const std::string path =
      get ? request_line.substr(4, request_line.find(' ', 4) - 4) : "";
  if (!get) {
    status = "400 Bad Request";
    body = "only GET is supported\n";
  } else if (path == "/metrics") {
    if (config_.metrics == nullptr) {
      status = "503 Service Unavailable";
      body = "no metrics registry attached\n";
    } else {
      if (ins_ != nullptr) {
        ins_->active->set(
            static_cast<std::int64_t>(active_.load(std::memory_order_relaxed)));
      }
      // The exact same render the file reporter uses — shared code path,
      // asserted byte-identical by the exposition golden test.
      body = serve::render_metrics_exposition(model_, *config_.metrics);
    }
  } else if (path == "/healthz") {
    // First line: the overall state word (what a human or a `grep -q ok`
    // liveness check reads). The lines after it are the machine-parseable
    // fields the cluster prober and ShardSupervisor need — serving snapshot
    // version and the degraded/drift flags — so checking version skew does
    // not cost a second /snapshot round-trip. net::parse_healthz is the
    // canonical reader.
    const bool draining = stopping_.load(std::memory_order_acquire);
    const auto snap = model_.snapshot();
    std::string state;
    if (draining) {
      status = "503 Service Unavailable";
      state = "draining";
    } else if (snap == nullptr) {
      status = "503 Service Unavailable";
      state = "no-model";
    } else if (model_.degraded()) {
      state = "degraded";  // still serving (popularity fallback): 200
    } else if (model_.drift_alert()) {
      // Serving fine but the scoreboard's DriftWatch says prediction
      // quality diverged from its long-run baseline — worth a page that is
      // softer than degraded, so still 200.
      state = "drift";
    } else {
      state = "ok";
    }
    body.append(state);
    body.append("\nversion ")
        .append(std::to_string(snap != nullptr ? snap->version : 0));
    body.append("\ndegraded ").append(model_.degraded() ? "1" : "0");
    body.append("\ndrift ").append(model_.drift_alert() ? "1" : "0");
    body.append("\ndraining ").append(draining ? "1" : "0");
    body.append("\n");
  } else if (path == "/scoreboard") {
    if (model_.scoreboard() == nullptr) {
      status = "503 Service Unavailable";
      body = "no scoreboard\n";
    } else {
      body = model_.scoreboard_json();
    }
  } else if (path == "/snapshot") {
    // What is this box serving, and how big is it? One line per field so
    // `curl :port/snapshot | grep bytes` works without a JSON parser.
    const auto snap = model_.snapshot();
    if (snap == nullptr) {
      status = "503 Service Unavailable";
      body = "no-model\n";
    } else {
      body.append("version ").append(std::to_string(snap->version));
      body.append("\nmodel ")
          .append(snap->model != nullptr ? snap->model->name() : "none");
      body.append("\nnodes ")
          .append(std::to_string(
              snap->model != nullptr ? snap->model->node_count() : 0));
      body.append("\nbytes ")
          .append(std::to_string(snap->storage_bytes()));
      body.append("\ndegraded ").append(snap->degraded() ? "1" : "0");
      body.append("\n");
    }
  } else {
    status = "404 Not Found";
    body = "unknown path\n";
  }
  std::string resp;
  resp.reserve(body.size() + 128);
  resp.append("HTTP/1.0 ").append(status).append("\r\n");
  resp.append("Content-Type: text/plain; charset=utf-8\r\n");
  resp.append("Content-Length: ").append(std::to_string(body.size()));
  resp.append("\r\nConnection: close\r\n\r\n");
  resp.append(body);
  return resp;
}

void PredictServer::admin_readable(AdminConn& a) {
  char buf[1024];
  while (true) {
    const ssize_t n = ::read(a.fd, buf, sizeof buf);
    if (n == 0) {
      close_admin(a.fd);
      return;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
      close_admin(a.fd);
      return;
    }
    a.in.append(buf, static_cast<std::size_t>(n));
    if (a.in.size() > kAdminRequestCapBytes) {
      close_admin(a.fd);  // no legitimate scrape request is this large
      return;
    }
  }
  // Answer only once the full header block has arrived — responding and
  // closing mid-request would race the client's remaining writes into an
  // RST that can eat the response.
  if (a.in.find("\r\n\r\n") == std::string::npos) return;
  const auto eol = a.in.find("\r\n");
  count(&Instruments::admin_requests, admin_requests_);
  a.out = admin_response(a.in.substr(0, eol));
  a.out_pos = 0;
  admin_writable(a);
}

void PredictServer::admin_writable(AdminConn& a) {
  while (a.out_pos < a.out.size()) {
    const ssize_t n = ::send(a.fd, a.out.data() + a.out_pos,
                             a.out.size() - a.out_pos, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
        accept_loop_->mod(a.fd, EPOLLOUT, &a.tag);
        return;
      }
      close_admin(a.fd);
      return;
    }
    a.out_pos += static_cast<std::size_t>(n);
  }
  close_admin(a.fd);  // Connection: close — one exchange per connection
}

void PredictServer::close_admin(int fd) {
  const auto it = admin_conns_.find(fd);
  if (it == admin_conns_.end()) return;
  accept_loop_->del(fd);
  ::close(fd);
  admin_conns_.erase(it);
}

}  // namespace webppm::net
