#include "net/event_loop.hpp"

#include <fcntl.h>
#include <sys/eventfd.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace webppm::net {

void OwnedFd::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

std::uint64_t now_ms() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000 +
         static_cast<std::uint64_t>(ts.tv_nsec) / 1000000;
}

EventLoop::EventLoop() {
  epoll_.reset(::epoll_create1(EPOLL_CLOEXEC));
  if (!epoll_.valid()) {
    error_ = std::string("epoll_create1: ") + std::strerror(errno);
    return;
  }
  wake_.reset(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK));
  if (!wake_.valid()) {
    error_ = std::string("eventfd: ") + std::strerror(errno);
    return;
  }
  add(wake_.get(), EPOLLIN, wake_tag());
}

bool EventLoop::add(int fd, std::uint32_t events, void* data) {
  epoll_event ev{};
  ev.events = events;
  ev.data.ptr = data;
  return ::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, fd, &ev) == 0;
}

bool EventLoop::mod(int fd, std::uint32_t events, void* data) {
  epoll_event ev{};
  ev.events = events;
  ev.data.ptr = data;
  return ::epoll_ctl(epoll_.get(), EPOLL_CTL_MOD, fd, &ev) == 0;
}

void EventLoop::del(int fd) {
  ::epoll_ctl(epoll_.get(), EPOLL_CTL_DEL, fd, nullptr);
}

int EventLoop::wait(int timeout_ms, std::vector<epoll_event>& out) {
  if (out.size() < 64) out.resize(64);
  const int n = ::epoll_wait(epoll_.get(), out.data(),
                             static_cast<int>(out.size()), timeout_ms);
  return n < 0 ? 0 : n;  // EINTR and transient errors read as a timeout
}

void EventLoop::wake() {
  const std::uint64_t one = 1;
  // A full eventfd counter (impossible here) or EINTR both leave a wake
  // pending or delivered; nothing useful to do with the result.
  [[maybe_unused]] const ssize_t n =
      ::write(wake_.get(), &one, sizeof one);
}

void EventLoop::drain_wake() {
  std::uint64_t buf = 0;
  while (::read(wake_.get(), &buf, sizeof buf) > 0) {
  }
}

TimeoutWheel::TimeoutWheel(std::uint64_t granularity_ms, std::size_t slots,
                           std::uint64_t start_ms)
    : granularity_ms_(granularity_ms == 0 ? 1 : granularity_ms),
      slots_(slots == 0 ? 1 : slots),
      cursor_ms_(start_ms) {}

void TimeoutWheel::schedule(std::uint64_t key, std::uint64_t deadline_ms) {
  // Beyond-horizon deadlines park one full rotation out; the entry fires
  // early, the owner sees the real deadline is still ahead and re-arms.
  const std::uint64_t horizon =
      cursor_ms_ + granularity_ms_ * (slots_.size() - 1);
  const std::uint64_t at = deadline_ms > horizon ? horizon : deadline_ms;
  slots_[slot_of(at)].push_back(key);
  ++pending_;
}

void TimeoutWheel::advance(std::uint64_t now_ms,
                           const std::function<void(std::uint64_t)>& cb) {
  if (now_ms <= cursor_ms_) return;
  std::uint64_t steps = (now_ms - cursor_ms_) / granularity_ms_;
  if (steps == 0) return;
  if (steps > slots_.size()) steps = slots_.size();
  std::size_t slot = slot_of(cursor_ms_);
  for (std::uint64_t i = 0; i < steps; ++i) {
    auto& bucket = slots_[slot];
    // cb may schedule() into any slot, including this one (a re-armed
    // deadline in the past parks at the cursor); swap the bucket out first
    // so the iteration only sees entries due this tick.
    std::vector<std::uint64_t> due;
    due.swap(bucket);
    pending_ -= due.size();
    for (const std::uint64_t key : due) cb(key);
    slot = (slot + 1) % slots_.size();
  }
  cursor_ms_ += steps * granularity_ms_;
}

int TimeoutWheel::next_timeout_ms(std::uint64_t now_ms) const {
  if (pending_ == 0) return -1;
  std::size_t slot = slot_of(cursor_ms_);
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (!slots_[(slot + i) % slots_.size()].empty()) {
      const std::uint64_t fire_ms = cursor_ms_ + (i + 1) * granularity_ms_;
      return fire_ms <= now_ms
                 ? 0
                 : static_cast<int>(fire_ms - now_ms);
    }
  }
  return -1;
}

}  // namespace webppm::net
