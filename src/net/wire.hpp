// webppm::net wire protocol — the length-prefixed binary frames the
// prediction service speaks (DESIGN.md §10).
//
// Every frame is a 4-byte little-endian body length followed by exactly
// that many body bytes. Bodies begin with a version byte so a client and
// server from different protocol revisions fail fast with a structured
// reason instead of misparsing each other.
//
//   request body  (kRequestBodyBytes, fixed):
//     u8  version      (= kWireVersion)
//     u8  flags        (bit 0: request carries an HTTP error status)
//     u32 client id    (interned ClientId)
//     u32 document id  (interned UrlId)
//     u64 timestamp    (TimeSec — drives session idle-timeout semantics)
//
//   response body (variable):
//     u8  version      (= kWireVersion)
//     u8  status       (Status below)
//     u16 count        (number of predictions)
//     u64 snapshot version
//     count * { u32 document id, u32 probability (IEEE-754 float bits) }
//
// Hardening rules (ISSUE 5 satellite): a frame header claiming zero bytes,
// or more than the configured cap, is rejected *before any allocation
// proportional to the claim*; a garbage version byte or a body whose length
// contradicts its own count field yields a clean DecodeError, never a
// crash or an over-read. The fuzz suite drives every branch of this parser
// with bit flips, truncations at every boundary, and byte soup.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "ppm/predictor.hpp"
#include "util/types.hpp"

namespace webppm::net {

inline constexpr std::uint8_t kWireVersion = 1;

/// Frame header: 4-byte little-endian body length.
inline constexpr std::size_t kFrameHeaderBytes = 4;

/// Fixed size of a request body (version + flags + client + url + time).
inline constexpr std::size_t kRequestBodyBytes = 1 + 1 + 4 + 4 + 8;

/// Fixed prefix of a response body before the prediction list.
inline constexpr std::size_t kResponsePrefixBytes = 1 + 1 + 2 + 8;

/// Default cap on a header-claimed body length. Responses dominate frame
/// size; even a 4096-entry prediction list fits in 32 KiB.
inline constexpr std::uint32_t kDefaultMaxFrameBytes = 64 * 1024;

/// Request flag bits.
inline constexpr std::uint8_t kFlagErrorStatus = 0x01;

/// Response status. kRetryLater is the retryable shed signal (connection
/// cap or drain) mirroring the serve layer's degradation contract: the
/// client should back off and retry, not fail.
enum class Status : std::uint8_t {
  kOk = 0,            ///< prediction list follows (possibly empty)
  kNoModel = 1,       ///< nothing published yet; list is empty
  kDegraded = 2,      ///< answered by the popularity fallback
  kRetryLater = 3,    ///< shed (connection cap / draining); retry later
  kBadRequest = 4,    ///< malformed frame; connection will close
  kError = 5,         ///< internal failure (e.g. injected fault)
};

const char* status_name(Status s);

/// One prediction query as it travels the wire.
struct WireRequest {
  std::uint8_t flags = 0;
  ClientId client = 0;
  UrlId url = 0;
  TimeSec timestamp = 0;

  friend bool operator==(const WireRequest&, const WireRequest&) = default;
};

/// One prediction answer as it travels the wire.
struct WireResponse {
  Status status = Status::kOk;
  std::uint64_t snapshot_version = 0;
  std::vector<ppm::Prediction> predictions;

  friend bool operator==(const WireResponse&, const WireResponse&) = default;
};

/// Appends one framed request/response to `out` (header + body).
void encode_request(const WireRequest& req, std::vector<std::uint8_t>& out);
void encode_response(const WireResponse& resp, std::vector<std::uint8_t>& out);

/// Structured decode failure: `reason` names the violated rule ("frame
/// length 0", "version 209 != 1", "count 9 needs 76 bytes, body has 20").
struct DecodeError {
  std::string reason;
  bool ok() const { return reason.empty(); }
};

/// Decodes one request/response *body* (the bytes after the frame header).
/// Never reads past `body.size()`; never allocates from attacker-supplied
/// counts beyond what the body length already proves is present.
DecodeError decode_request(std::span<const std::uint8_t> body,
                           WireRequest& out);
DecodeError decode_response(std::span<const std::uint8_t> body,
                            WireResponse& out);

/// Incremental frame extractor over a connection's read buffer.
///
/// next() inspects `buf` from offset `pos`: returns kNeedMore until a full
/// header+body is buffered, kFrame with the body's span when one is, or
/// kBad with a reason the moment the *header alone* is invalid (zero or
/// over-cap claimed length) — the claim is rejected before any body byte
/// is waited for, so a hostile header can never size an allocation.
class FrameParser {
 public:
  explicit FrameParser(std::uint32_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  enum class Result : std::uint8_t { kNeedMore, kFrame, kBad };

  struct Frame {
    Result result = Result::kNeedMore;
    std::span<const std::uint8_t> body;  ///< valid when result == kFrame
    std::size_t consumed = 0;            ///< bytes of buf used by this frame
    std::string reason;                  ///< set when result == kBad
  };

  Frame next(std::span<const std::uint8_t> buf) const;

  std::uint32_t max_frame_bytes() const { return max_frame_bytes_; }

 private:
  std::uint32_t max_frame_bytes_;
};

}  // namespace webppm::net
