// webppm::net wire protocol — the length-prefixed binary frames the
// prediction service speaks (DESIGN.md §10).
//
// Every frame is a 4-byte little-endian body length followed by exactly
// that many body bytes. Bodies begin with a version byte so a client and
// server from different protocol revisions fail fast with a structured
// reason instead of misparsing each other. Version 1 frames carry one
// query; version 2 frames carry a *batch* — the framing a client uses to
// amortize the per-frame syscall/wakeup cost over many queries; version 3
// frames are one-way *observe* reports that feed session state and online
// training without a response. A server speaks all three: the version
// byte is per frame, so one connection may mix them freely.
//
//   v1 request body  (kRequestBodyBytes, fixed):
//     u8  version      (= kWireVersion)
//     u8  flags        (bit 0: request carries an HTTP error status)
//     u32 client id    (interned ClientId)
//     u32 document id  (interned UrlId)
//     u64 timestamp    (TimeSec — drives session idle-timeout semantics)
//
//   v1 response body (variable):
//     u8  version      (= kWireVersion)
//     u8  status       (Status below)
//     u16 count        (number of predictions)
//     u64 snapshot version
//     count * { u32 document id, u32 probability (IEEE-754 float bits) }
//
//   v2 batch request body (variable):
//     u8  version      (= kWireVersionBatch)
//     u8  reserved     (must be 0)
//     u16 count        (sub-requests; >= 1)
//     count * { u8 flags, u32 client id, u32 document id, u64 timestamp }
//
//   v2 batch response body (variable; sub-responses in request order):
//     u8  version      (= kWireVersionBatch)
//     u8  reserved     (must be 0)
//     u16 count        (sub-responses; == the request's count)
//     count * { u8 status, u16 n, u64 snapshot version, n * 8 bytes }
//
// Each v2 sub-response carries its *own* status and snapshot version —
// one malformed or refused entry degrades that slot to kBadRequest/kError
// instead of killing the batch, and re-encoding a sub-response as a v1
// frame reproduces the exact bytes a v1 replay of the same query yields
// (the batch byte-identity gate in bench/net_throughput).
//
// Hardening rules (ISSUE 5 satellite, extended to v2 by ISSUE 7): a frame
// header claiming zero bytes, or more than the configured cap, is rejected
// *before any allocation proportional to the claim*; a garbage version
// byte or a body whose length contradicts its own count field — outer
// batch count or any sub-response's prediction count — yields a clean
// DecodeError, never a crash, an over-read, or a reserve sized by a
// hostile field. The fuzz suite drives every branch of this parser with
// bit flips, truncations at every boundary, and byte soup.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "net/write_ring.hpp"
#include "ppm/predictor.hpp"
#include "util/types.hpp"

namespace webppm::net {

inline constexpr std::uint8_t kWireVersion = 1;

/// Version byte of a batch (many-queries-per-frame) request/response.
inline constexpr std::uint8_t kWireVersionBatch = 2;

/// Version byte of an observe frame: a one-way batch of requests the
/// client *reports* rather than asks about. Body layout is exactly the v2
/// batch request's (version, reserved, u16 count, count 17-byte entries) —
/// only the version byte differs — but the server sends NO response: the
/// entries feed session contexts and the online-training pipeline
/// (ModelServer::observe), so a replay tool can drive training at wire
/// speed without paying for predictions it will discard. Ordering within a
/// connection is preserved (frames are processed in arrival order), so a
/// v1/v2 query after an observe frame on the same connection sees the
/// observed clicks already in its session context.
inline constexpr std::uint8_t kWireVersionObserve = 3;

/// Frame header: 4-byte little-endian body length.
inline constexpr std::size_t kFrameHeaderBytes = 4;

/// Fixed size of a request body (version + flags + client + url + time).
inline constexpr std::size_t kRequestBodyBytes = 1 + 1 + 4 + 4 + 8;

/// Fixed prefix of a response body before the prediction list.
inline constexpr std::size_t kResponsePrefixBytes = 1 + 1 + 2 + 8;

/// Fixed prefix of a v2 batch request/response body (version, reserved,
/// u16 count) before the sub-entries.
inline constexpr std::size_t kBatchPrefixBytes = 1 + 1 + 2;

/// One v2 batch request entry (flags + client + url + timestamp — the v1
/// request body minus its version byte).
inline constexpr std::size_t kBatchRequestEntryBytes = 1 + 4 + 4 + 8;

/// Fixed prefix of one v2 batch sub-response (status, u16 prediction
/// count, u64 snapshot version) before its prediction list.
inline constexpr std::size_t kBatchEntryPrefixBytes = 1 + 2 + 8;

/// Default cap on a header-claimed body length. Responses dominate frame
/// size; even a 4096-entry prediction list fits in 32 KiB.
inline constexpr std::uint32_t kDefaultMaxFrameBytes = 64 * 1024;

/// Default *response* cap a batch-mode client applies: a batch response
/// aggregates many prediction lists in one frame, so the v1 cap is far too
/// tight. (Server-side request caps are unaffected — a batch request is 17
/// bytes per entry and fits kDefaultMaxFrameBytes up to ~3850 queries.)
inline constexpr std::uint32_t kDefaultMaxBatchFrameBytes = 1024 * 1024;

/// Request flag bits.
inline constexpr std::uint8_t kFlagErrorStatus = 0x01;

/// Response status. kRetryLater is the retryable shed signal (connection
/// cap or drain) mirroring the serve layer's degradation contract: the
/// client should back off and retry, not fail.
enum class Status : std::uint8_t {
  kOk = 0,            ///< prediction list follows (possibly empty)
  kNoModel = 1,       ///< nothing published yet; list is empty
  kDegraded = 2,      ///< answered by the popularity fallback
  kRetryLater = 3,    ///< shed (connection cap / draining); retry later
  kBadRequest = 4,    ///< malformed frame; connection will close
  kError = 5,         ///< internal failure (e.g. injected fault)
};

const char* status_name(Status s);

/// One prediction query as it travels the wire.
struct WireRequest {
  std::uint8_t flags = 0;
  ClientId client = 0;
  UrlId url = 0;
  TimeSec timestamp = 0;

  friend bool operator==(const WireRequest&, const WireRequest&) = default;
};

/// One prediction answer as it travels the wire.
struct WireResponse {
  Status status = Status::kOk;
  std::uint64_t snapshot_version = 0;
  std::vector<ppm::Prediction> predictions;

  friend bool operator==(const WireResponse&, const WireResponse&) = default;
};

/// Appends one framed request to `out` (header + body).
void encode_request(const WireRequest& req, std::vector<std::uint8_t>& out);

/// Appends one framed response to `out` (header + body). A prediction list
/// longer than the u16 count field is truncated *deterministically* (the
/// list is sorted by descending probability, so the kept prefix is the
/// best 65535); the return value is how many predictions were dropped so
/// the caller can account the truncation (the server counts it in
/// webppm_net_response_truncated_total) instead of it passing silently.
std::size_t encode_response(const WireResponse& resp,
                            std::vector<std::uint8_t>& out);

/// Appends one framed v2 batch request carrying `reqs` (request order is
/// preserved; the response's sub-entries come back in the same order).
/// Batches longer than the u16 count field are truncated deterministically
/// (first 65535 kept); returns how many entries were dropped — callers
/// bound batches far below that, so a nonzero return is a caller bug
/// surfaced rather than a silent wrap.
std::size_t encode_batch_request(std::span<const WireRequest> reqs,
                                 std::vector<std::uint8_t>& out);

/// Appends one framed v3 observe frame carrying `reqs` (order preserved;
/// no response will come back). Same u16 truncation rule and return as
/// encode_batch_request.
std::size_t encode_observe_frame(std::span<const WireRequest> reqs,
                                 std::vector<std::uint8_t>& out);

/// encode_response straight into a connection's write ring (the v1 path of
/// the zero-copy server; same bytes, same truncation rule and return).
std::size_t encode_response(const WireResponse& resp, WriteRing& out);

/// Appends one framed v2 batch response carrying `resps` in order — the
/// staging-vector twin of BatchResponseWriter, emitting the exact bytes the
/// server's ring path emits for the same sub-responses. The cluster router
/// uses it to reassemble per-shard sub-batches into the single frame the
/// client would have received from one big server. Returns predictions
/// dropped by the per-sub-response u16 clamp (same rule as
/// encode_response).
std::size_t encode_batch_response(std::span<const WireResponse> resps,
                                  std::vector<std::uint8_t>& out);

/// Structured decode failure: `reason` names the violated rule ("frame
/// length 0", "version 209 != 1", "count 9 needs 76 bytes, body has 20").
struct DecodeError {
  std::string reason;
  bool ok() const { return reason.empty(); }
};

/// Decodes one request/response *body* (the bytes after the frame header).
/// Never reads past `body.size()`; never allocates from attacker-supplied
/// counts beyond what the body length already proves is present.
DecodeError decode_request(std::span<const std::uint8_t> body,
                           WireRequest& out);
DecodeError decode_response(std::span<const std::uint8_t> body,
                            WireResponse& out);

/// Version byte of a frame body (0 for an empty body) — how the server
/// dispatches a frame between the v1 single-query and v2 batch decoders.
inline std::uint8_t frame_version(std::span<const std::uint8_t> body) {
  return body.empty() ? 0 : body[0];
}

/// Decodes a v2 batch request body into `out` (cleared first). The outer
/// frame is validated before any allocation: version, reserved byte, and
/// count-vs-body-length must agree exactly. Per-entry *flag* bits are NOT
/// validated here — an entry with unknown flags is the caller's per-slot
/// kBadRequest (one bad entry degrades its slot, it does not kill the
/// batch); everything that would make the frame unparseable is.
DecodeError decode_batch_request(std::span<const std::uint8_t> body,
                                 std::vector<WireRequest>& out);

/// Decodes a v3 observe frame body into `out` (cleared first). Identical
/// hardening to decode_batch_request (it is the same layout under a
/// different version byte): count proven against the body length before
/// any allocation, per-entry flag bits left to the caller's per-slot
/// handling.
DecodeError decode_observe_frame(std::span<const std::uint8_t> body,
                                 std::vector<WireRequest>& out);

/// Decodes a v2 batch response body into `out` (cleared first), one
/// WireResponse per sub-entry in request order. Every sub-entry's
/// prediction count is proven against the remaining body length before any
/// reserve; the walk must consume the body exactly (no trailing garbage).
DecodeError decode_batch_response(std::span<const std::uint8_t> body,
                                  std::vector<WireResponse>& out);

/// Serializes a v2 batch response frame *directly into a connection's
/// write ring* — the zero-copy server path: begin() reserves the frame
/// header and batch prefix, each add() appends one sub-response straight
/// from the prediction span (no WireResponse materialized), and finish()
/// patches the header-claimed length and the batch count in place.
/// Returns how many predictions truncation dropped across the batch
/// (per-sub-response u16 clamp, same rule as encode_response).
class BatchResponseWriter {
 public:
  explicit BatchResponseWriter(WriteRing& ring) : ring_(ring) {}

  void begin();
  /// Appends one sub-response. Returns predictions dropped by the u16
  /// clamp (0 in any realistic configuration — prediction lists are
  /// threshold-filtered far below 65535).
  std::size_t add(Status status, std::uint64_t snapshot_version,
                  std::span<const ppm::Prediction> preds);
  /// Patches the frame length + batch count; returns total dropped
  /// predictions across every add().
  std::size_t finish();

 private:
  WriteRing& ring_;
  std::uint64_t len_mark_ = 0;    ///< frame-length field position
  std::uint64_t count_mark_ = 0;  ///< batch-count field position
  std::uint32_t count_ = 0;
  std::size_t dropped_ = 0;
};

/// Incremental frame extractor over a connection's read buffer.
///
/// next() inspects `buf` from its first byte (callers pass the unparsed
/// tail as a subspan): returns kNeedMore until a full header+body is
/// buffered, kFrame with the body's span when one is, or kBad with a
/// reason the moment the *header alone* is invalid (zero or over-cap
/// claimed length) — the claim is rejected before any body byte is waited
/// for, so a hostile header can never size an allocation.
class FrameParser {
 public:
  explicit FrameParser(std::uint32_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  enum class Result : std::uint8_t { kNeedMore, kFrame, kBad };

  struct Frame {
    Result result = Result::kNeedMore;
    std::span<const std::uint8_t> body;  ///< valid when result == kFrame
    std::size_t consumed = 0;            ///< bytes of buf used by this frame
    std::string reason;                  ///< set when result == kBad
  };

  Frame next(std::span<const std::uint8_t> buf) const;

  std::uint32_t max_frame_bytes() const { return max_frame_bytes_; }

 private:
  std::uint32_t max_frame_bytes_;
};

}  // namespace webppm::net
