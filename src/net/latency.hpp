// Access-latency model (paper §4.2): per-request latency estimated as
// connection time plus size-proportional transfer time, with the two
// coefficients obtained by a least-squares fit of measured latencies versus
// document size — the method of Jin & Bestavros (ICDCS 2000), the paper's
// reference [16].
#pragma once

#include <cstdint>
#include <vector>

#include "util/least_squares.hpp"
#include "util/rng.hpp"

namespace webppm::net {

/// latency(size) = connect_seconds + size_bytes * seconds_per_byte.
class LatencyModel {
 public:
  LatencyModel(double connect_seconds, double seconds_per_byte)
      : connect_(connect_seconds), per_byte_(seconds_per_byte) {}

  double latency_seconds(std::uint64_t size_bytes) const {
    return connect_ + per_byte_ * static_cast<double>(size_bytes);
  }

  double connect_seconds() const { return connect_; }
  double seconds_per_byte() const { return per_byte_; }

 private:
  double connect_;
  double per_byte_;
};

/// One observed (document size, fetch latency) measurement.
struct LatencyObservation {
  double size_bytes = 0.0;
  double latency_seconds = 0.0;
};

/// Fits a LatencyModel to observations by ordinary least squares, exactly
/// as [16] calibrates connection and transfer times from traces.
/// Negative fitted coefficients are clamped to zero (can occur with noisy
/// observations; a negative connect time is meaningless).
LatencyModel fit_latency_model(const std::vector<LatencyObservation>& obs);

/// Synthesises latency observations from a ground-truth connect/bandwidth
/// pair plus multiplicative lognormal noise — the substitute for the
/// paper's measured remote-server latencies (DESIGN.md §1).
struct LatencySamplerConfig {
  double connect_seconds = 0.35;        ///< mid-90s WAN RTT + TCP handshake
  double bandwidth_bytes_per_sec = 64 * 1024.0;  ///< ~0.5 Mbit effective
  double noise_sigma = 0.25;            ///< lognormal sigma on the total
  std::uint64_t seed = 0x1a7e0c1ull;
};

std::vector<LatencyObservation> sample_latency_observations(
    const LatencySamplerConfig& config, const std::vector<double>& sizes);

/// Convenience: sample sizes log-uniformly in [1 KB, 1 MB], observe, fit.
LatencyModel calibrated_latency_model(const LatencySamplerConfig& config = {},
                                      std::size_t observations = 400);

}  // namespace webppm::net
