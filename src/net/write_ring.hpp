// net::WriteRing — a connection's outgoing byte ring (DESIGN.md §10).
//
// The batched response path serializes predictions exactly once, straight
// into this ring: encoders append little-endian fields at the tail,
// remember a logical *mark* for length/count fields whose values are only
// known once a frame is finished, and patch them in place — no staging
// buffer, no memmove compaction when the flush cursor advances.
//
// Storage is a power-of-two circular buffer: flushed bytes free their
// space immediately, so a long-lived connection reuses the same pages
// instead of erasing a vector prefix per flush. When the pending bytes
// wrap the physical end, flush() hands the kernel both segments in one
// sendmsg() (writev-style scatter/gather) with MSG_NOSIGNAL — the wrap
// costs an iovec, never a copy or a second syscall.
//
// Logical offsets (`mark()`) are monotonic counters of bytes ever pushed,
// so a patch target stays valid however often the ring flushes or grows
// between begin and finish of a frame.
#pragma once

#include <sys/types.h>

#include <cstddef>
#include <cstdint>
#include <vector>

namespace webppm::net {

class WriteRing {
 public:
  /// Unflushed bytes queued in the ring.
  std::size_t pending() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Logical offset of the next byte push() will write. Monotonic across
  /// flushes; feed back into patch_u16/patch_u32.
  std::uint64_t mark() const { return consumed_ + size_; }

  void push(const void* data, std::size_t n);
  void push_u8(std::uint8_t v) { push(&v, 1); }
  void push_u16(std::uint16_t v);
  void push_u32(std::uint32_t v);
  void push_u64(std::uint64_t v);

  /// Overwrites bytes previously pushed at logical offset `at` (obtained
  /// from mark()). The target must still be pending — patching flushed
  /// bytes is a logic error.
  void patch_u16(std::uint64_t at, std::uint16_t v);
  void patch_u32(std::uint64_t at, std::uint32_t v);

  /// Sends up to `limit` pending bytes (0 = all) to `fd` in one
  /// sendmsg(MSG_NOSIGNAL), passing both physical segments as iovecs when
  /// the pending range wraps. Returns the kernel's byte count (already
  /// consumed from the ring) or -1 with errno set.
  ssize_t flush(int fd, std::size_t limit = 0);

  /// Drops everything pending (connection teardown).
  void clear();

  /// Copy of the pending bytes in logical order (tests, debugging).
  std::vector<std::uint8_t> pending_bytes() const;

 private:
  void ensure(std::size_t extra);
  std::size_t mask() const { return buf_.size() - 1; }

  std::vector<std::uint8_t> buf_;  ///< power-of-two capacity (or empty)
  std::size_t head_ = 0;           ///< physical index of first pending byte
  std::size_t size_ = 0;           ///< pending byte count
  std::uint64_t consumed_ = 0;     ///< logical offset of head_
};

}  // namespace webppm::net
