#include "net/wire.hpp"

#include <bit>
#include <cstring>
#include <limits>

namespace webppm::net {
namespace {

void put_u16(std::uint16_t v, std::vector<std::uint8_t>& out) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::uint32_t v, std::vector<std::uint8_t>& out) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::uint64_t v, std::vector<std::uint8_t>& out) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t get_u64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         (static_cast<std::uint64_t>(get_u32(p + 4)) << 32);
}

DecodeError fail(std::string reason) { return DecodeError{std::move(reason)}; }

/// Byte-sink adapter so the response encoders emit identical bytes whether
/// the target is a staging vector (clients, tests) or a connection's
/// WriteRing (the server's zero-copy path).
struct VecSink {
  std::vector<std::uint8_t>& v;
  void push_u8(std::uint8_t b) { v.push_back(b); }
  void push_u16(std::uint16_t x) { put_u16(x, v); }
  void push_u32(std::uint32_t x) { put_u32(x, v); }
  void push_u64(std::uint64_t x) { put_u64(x, v); }
};

template <typename Sink>
std::size_t encode_response_impl(const WireResponse& resp, Sink&& sink) {
  // A prediction list longer than u16 cannot be framed; the serving layer
  // never produces one (lists are threshold-filtered), but truncate
  // deterministically anyway — the list is sorted best-first, so the kept
  // prefix is the top 65535 — and report the dropped count so the caller
  // can account it (webppm_net_response_truncated_total) instead of the
  // encoder ever emitting a body that contradicts its count field.
  const std::size_t count =
      std::min<std::size_t>(resp.predictions.size(),
                            std::numeric_limits<std::uint16_t>::max());
  const std::size_t body = kResponsePrefixBytes + count * 8;
  sink.push_u32(static_cast<std::uint32_t>(body));
  sink.push_u8(kWireVersion);
  sink.push_u8(static_cast<std::uint8_t>(resp.status));
  sink.push_u16(static_cast<std::uint16_t>(count));
  sink.push_u64(resp.snapshot_version);
  for (std::size_t i = 0; i < count; ++i) {
    sink.push_u32(resp.predictions[i].url);
    sink.push_u32(
        std::bit_cast<std::uint32_t>(resp.predictions[i].probability));
  }
  return resp.predictions.size() - count;
}

}  // namespace

const char* status_name(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kNoModel: return "no-model";
    case Status::kDegraded: return "degraded";
    case Status::kRetryLater: return "retry-later";
    case Status::kBadRequest: return "bad-request";
    case Status::kError: return "error";
  }
  return "unknown";
}

void encode_request(const WireRequest& req, std::vector<std::uint8_t>& out) {
  put_u32(static_cast<std::uint32_t>(kRequestBodyBytes), out);
  out.push_back(kWireVersion);
  out.push_back(req.flags);
  put_u32(req.client, out);
  put_u32(req.url, out);
  put_u64(req.timestamp, out);
}

std::size_t encode_response(const WireResponse& resp,
                            std::vector<std::uint8_t>& out) {
  return encode_response_impl(resp, VecSink{out});
}

std::size_t encode_response(const WireResponse& resp, WriteRing& out) {
  return encode_response_impl(resp, out);
}

namespace {

/// The v2 batch request and v3 observe frame share one body layout; only
/// the version byte differs. One encoder keeps them byte-compatible.
std::size_t encode_request_list(std::uint8_t version,
                                std::span<const WireRequest> reqs,
                                std::vector<std::uint8_t>& out) {
  const std::size_t count =
      std::min<std::size_t>(reqs.size(),
                            std::numeric_limits<std::uint16_t>::max());
  const std::size_t body =
      kBatchPrefixBytes + count * kBatchRequestEntryBytes;
  put_u32(static_cast<std::uint32_t>(body), out);
  out.push_back(version);
  out.push_back(0);  // reserved
  put_u16(static_cast<std::uint16_t>(count), out);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(reqs[i].flags);
    put_u32(reqs[i].client, out);
    put_u32(reqs[i].url, out);
    put_u64(reqs[i].timestamp, out);
  }
  return reqs.size() - count;
}

/// Shared decoder for the two request-list frames (v2 batch / v3 observe).
DecodeError decode_request_list(std::uint8_t version, const char* what,
                                std::span<const std::uint8_t> body,
                                std::vector<WireRequest>& out) {
  out.clear();
  if (body.size() < kBatchPrefixBytes) {
    return fail(std::string(what) + " body " + std::to_string(body.size()) +
                " bytes, prefix needs " + std::to_string(kBatchPrefixBytes));
  }
  if (body[0] != version) {
    return fail("version " + std::to_string(body[0]) + " != " +
                std::to_string(version));
  }
  if (body[1] != 0) {
    return fail("reserved byte " + std::to_string(body[1]) + " != 0");
  }
  const std::uint16_t count = get_u16(body.data() + 2);
  if (count == 0) return fail(std::string(what) + " count 0");
  // The count must be provable from bytes already in hand: resize only
  // after the body length confirms the claim, so a flipped count can never
  // size an allocation.
  const std::size_t need =
      kBatchPrefixBytes + std::size_t{count} * kBatchRequestEntryBytes;
  if (body.size() != need) {
    return fail(std::string(what) + " count " + std::to_string(count) +
                " needs " + std::to_string(need) + " bytes, body has " +
                std::to_string(body.size()));
  }
  out.resize(count);
  const std::uint8_t* p = body.data() + kBatchPrefixBytes;
  for (std::uint16_t i = 0; i < count; ++i, p += kBatchRequestEntryBytes) {
    out[i].flags = p[0];
    out[i].client = get_u32(p + 1);
    out[i].url = get_u32(p + 5);
    out[i].timestamp = get_u64(p + 9);
  }
  return {};
}

}  // namespace

std::size_t encode_batch_request(std::span<const WireRequest> reqs,
                                 std::vector<std::uint8_t>& out) {
  return encode_request_list(kWireVersionBatch, reqs, out);
}

std::size_t encode_observe_frame(std::span<const WireRequest> reqs,
                                 std::vector<std::uint8_t>& out) {
  return encode_request_list(kWireVersionObserve, reqs, out);
}

std::size_t encode_batch_response(std::span<const WireResponse> resps,
                                  std::vector<std::uint8_t>& out) {
  const std::size_t count =
      std::min<std::size_t>(resps.size(),
                            std::numeric_limits<std::uint16_t>::max());
  const std::size_t len_mark = out.size();
  put_u32(0, out);  // frame length, patched below
  out.push_back(kWireVersionBatch);
  out.push_back(0);  // reserved
  put_u16(static_cast<std::uint16_t>(count), out);
  std::size_t dropped = resps.size() - count;
  for (std::size_t i = 0; i < count; ++i) {
    const auto& r = resps[i];
    const std::size_t n =
        std::min<std::size_t>(r.predictions.size(),
                              std::numeric_limits<std::uint16_t>::max());
    out.push_back(static_cast<std::uint8_t>(r.status));
    put_u16(static_cast<std::uint16_t>(n), out);
    put_u64(r.snapshot_version, out);
    for (std::size_t j = 0; j < n; ++j) {
      put_u32(r.predictions[j].url, out);
      put_u32(std::bit_cast<std::uint32_t>(r.predictions[j].probability),
              out);
    }
    dropped += r.predictions.size() - n;
  }
  const std::uint32_t body = static_cast<std::uint32_t>(
      out.size() - len_mark - kFrameHeaderBytes);
  out[len_mark + 0] = static_cast<std::uint8_t>(body & 0xff);
  out[len_mark + 1] = static_cast<std::uint8_t>((body >> 8) & 0xff);
  out[len_mark + 2] = static_cast<std::uint8_t>((body >> 16) & 0xff);
  out[len_mark + 3] = static_cast<std::uint8_t>((body >> 24) & 0xff);
  return dropped;
}

DecodeError decode_request(std::span<const std::uint8_t> body,
                           WireRequest& out) {
  if (body.size() != kRequestBodyBytes) {
    return fail("request body " + std::to_string(body.size()) + " bytes, expected " +
                std::to_string(kRequestBodyBytes));
  }
  if (body[0] != kWireVersion) {
    return fail("version " + std::to_string(body[0]) + " != " +
                std::to_string(kWireVersion));
  }
  if ((body[1] & ~kFlagErrorStatus) != 0) {
    return fail("unknown flag bits " + std::to_string(body[1]));
  }
  out.flags = body[1];
  out.client = get_u32(body.data() + 2);
  out.url = get_u32(body.data() + 6);
  out.timestamp = get_u64(body.data() + 10);
  return {};
}

DecodeError decode_response(std::span<const std::uint8_t> body,
                            WireResponse& out) {
  if (body.size() < kResponsePrefixBytes) {
    return fail("response body " + std::to_string(body.size()) +
                " bytes, prefix needs " +
                std::to_string(kResponsePrefixBytes));
  }
  if (body[0] != kWireVersion) {
    return fail("version " + std::to_string(body[0]) + " != " +
                std::to_string(kWireVersion));
  }
  const std::uint8_t status = body[1];
  if (status > static_cast<std::uint8_t>(Status::kError)) {
    return fail("unknown status " + std::to_string(status));
  }
  const std::uint16_t count = get_u16(body.data() + 2);
  // The count must be provable from bytes already in hand — reserve/resize
  // only after the body length confirms the claim, so a flipped count can
  // never size an allocation.
  const std::size_t need = kResponsePrefixBytes + std::size_t{count} * 8;
  if (body.size() != need) {
    return fail("count " + std::to_string(count) + " needs " +
                std::to_string(need) + " bytes, body has " +
                std::to_string(body.size()));
  }
  out.status = static_cast<Status>(status);
  out.snapshot_version = get_u64(body.data() + 4);
  out.predictions.clear();
  out.predictions.reserve(count);
  const std::uint8_t* p = body.data() + kResponsePrefixBytes;
  for (std::uint16_t i = 0; i < count; ++i, p += 8) {
    ppm::Prediction pred;
    pred.url = get_u32(p);
    pred.probability = std::bit_cast<float>(get_u32(p + 4));
    out.predictions.push_back(pred);
  }
  return {};
}

DecodeError decode_batch_request(std::span<const std::uint8_t> body,
                                 std::vector<WireRequest>& out) {
  return decode_request_list(kWireVersionBatch, "batch request", body, out);
}

DecodeError decode_observe_frame(std::span<const std::uint8_t> body,
                                 std::vector<WireRequest>& out) {
  return decode_request_list(kWireVersionObserve, "observe frame", body, out);
}

DecodeError decode_batch_response(std::span<const std::uint8_t> body,
                                  std::vector<WireResponse>& out) {
  out.clear();
  if (body.size() < kBatchPrefixBytes) {
    return fail("batch response body " + std::to_string(body.size()) +
                " bytes, prefix needs " + std::to_string(kBatchPrefixBytes));
  }
  if (body[0] != kWireVersionBatch) {
    return fail("version " + std::to_string(body[0]) + " != " +
                std::to_string(kWireVersionBatch));
  }
  if (body[1] != 0) {
    return fail("reserved byte " + std::to_string(body[1]) + " != 0");
  }
  const std::uint16_t count = get_u16(body.data() + 2);
  if (count == 0) return fail("batch count 0");
  // The sub-entries are variable-length, so the outer count cannot be
  // length-checked up front; instead every claim is proven against the
  // bytes still in hand before anything is sized by it. A minimum-size
  // check (count * empty sub-response) still rejects the grossly hostile
  // counts before the walk.
  if (body.size() <
      kBatchPrefixBytes + std::size_t{count} * kBatchEntryPrefixBytes) {
    return fail("batch count " + std::to_string(count) +
                " cannot fit in body of " + std::to_string(body.size()) +
                " bytes");
  }
  out.reserve(count);
  std::size_t pos = kBatchPrefixBytes;
  for (std::uint16_t i = 0; i < count; ++i) {
    if (body.size() - pos < kBatchEntryPrefixBytes) {
      return fail("sub-response " + std::to_string(i) +
                  " prefix overruns body");
    }
    const std::uint8_t status = body[pos];
    if (status > static_cast<std::uint8_t>(Status::kError)) {
      return fail("sub-response " + std::to_string(i) + " unknown status " +
                  std::to_string(status));
    }
    const std::uint16_t n = get_u16(body.data() + pos + 1);
    const std::uint64_t version = get_u64(body.data() + pos + 3);
    pos += kBatchEntryPrefixBytes;
    if ((body.size() - pos) / 8 < n) {
      return fail("sub-response " + std::to_string(i) + " count " +
                  std::to_string(n) + " needs " + std::to_string(n * 8u) +
                  " bytes, " + std::to_string(body.size() - pos) + " left");
    }
    WireResponse resp;
    resp.status = static_cast<Status>(status);
    resp.snapshot_version = version;
    resp.predictions.reserve(n);  // proven present just above
    const std::uint8_t* p = body.data() + pos;
    for (std::uint16_t j = 0; j < n; ++j, p += 8) {
      ppm::Prediction pred;
      pred.url = get_u32(p);
      pred.probability = std::bit_cast<float>(get_u32(p + 4));
      resp.predictions.push_back(pred);
    }
    pos += std::size_t{n} * 8;
    out.push_back(std::move(resp));
  }
  if (pos != body.size()) {
    return fail("batch body has " + std::to_string(body.size() - pos) +
                " trailing bytes");
  }
  return {};
}

void BatchResponseWriter::begin() {
  len_mark_ = ring_.mark();
  ring_.push_u32(0);  // frame length, patched by finish()
  ring_.push_u8(kWireVersionBatch);
  ring_.push_u8(0);  // reserved
  count_mark_ = ring_.mark();
  ring_.push_u16(0);  // batch count, patched by finish()
  count_ = 0;
  dropped_ = 0;
}

std::size_t BatchResponseWriter::add(Status status,
                                     std::uint64_t snapshot_version,
                                     std::span<const ppm::Prediction> preds) {
  const std::size_t n =
      std::min<std::size_t>(preds.size(),
                            std::numeric_limits<std::uint16_t>::max());
  ring_.push_u8(static_cast<std::uint8_t>(status));
  ring_.push_u16(static_cast<std::uint16_t>(n));
  ring_.push_u64(snapshot_version);
  for (std::size_t i = 0; i < n; ++i) {
    ring_.push_u32(preds[i].url);
    ring_.push_u32(std::bit_cast<std::uint32_t>(preds[i].probability));
  }
  dropped_ += preds.size() - n;
  ++count_;
  return preds.size() - n;
}

std::size_t BatchResponseWriter::finish() {
  const std::uint64_t body_bytes = ring_.mark() - len_mark_ - 4;
  ring_.patch_u32(len_mark_, static_cast<std::uint32_t>(body_bytes));
  ring_.patch_u16(count_mark_, static_cast<std::uint16_t>(count_));
  return dropped_;
}

FrameParser::Frame FrameParser::next(std::span<const std::uint8_t> buf) const {
  Frame f;
  if (buf.size() < kFrameHeaderBytes) return f;  // kNeedMore
  const std::uint32_t len = get_u32(buf.data());
  if (len == 0) {
    f.result = Result::kBad;
    f.reason = "frame length 0";
    return f;
  }
  if (len > max_frame_bytes_) {
    f.result = Result::kBad;
    f.reason = "frame length " + std::to_string(len) + " exceeds cap " +
               std::to_string(max_frame_bytes_);
    return f;
  }
  if (buf.size() < kFrameHeaderBytes + len) return f;  // kNeedMore
  f.result = Result::kFrame;
  f.body = buf.subspan(kFrameHeaderBytes, len);
  f.consumed = kFrameHeaderBytes + len;
  return f;
}

}  // namespace webppm::net
