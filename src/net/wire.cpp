#include "net/wire.hpp"

#include <bit>
#include <cstring>
#include <limits>

namespace webppm::net {
namespace {

void put_u16(std::uint16_t v, std::vector<std::uint8_t>& out) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::uint32_t v, std::vector<std::uint8_t>& out) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::uint64_t v, std::vector<std::uint8_t>& out) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t get_u64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         (static_cast<std::uint64_t>(get_u32(p + 4)) << 32);
}

DecodeError fail(std::string reason) { return DecodeError{std::move(reason)}; }

}  // namespace

const char* status_name(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kNoModel: return "no-model";
    case Status::kDegraded: return "degraded";
    case Status::kRetryLater: return "retry-later";
    case Status::kBadRequest: return "bad-request";
    case Status::kError: return "error";
  }
  return "unknown";
}

void encode_request(const WireRequest& req, std::vector<std::uint8_t>& out) {
  put_u32(static_cast<std::uint32_t>(kRequestBodyBytes), out);
  out.push_back(kWireVersion);
  out.push_back(req.flags);
  put_u32(req.client, out);
  put_u32(req.url, out);
  put_u64(req.timestamp, out);
}

void encode_response(const WireResponse& resp,
                     std::vector<std::uint8_t>& out) {
  // A prediction list longer than u16 cannot be framed; the serving layer
  // never produces one (lists are threshold-filtered), but clamp anyway so
  // the encoder can never emit a body that contradicts its count field.
  const std::size_t count =
      std::min<std::size_t>(resp.predictions.size(),
                            std::numeric_limits<std::uint16_t>::max());
  const std::size_t body = kResponsePrefixBytes + count * 8;
  put_u32(static_cast<std::uint32_t>(body), out);
  out.push_back(kWireVersion);
  out.push_back(static_cast<std::uint8_t>(resp.status));
  put_u16(static_cast<std::uint16_t>(count), out);
  put_u64(resp.snapshot_version, out);
  for (std::size_t i = 0; i < count; ++i) {
    put_u32(resp.predictions[i].url, out);
    put_u32(std::bit_cast<std::uint32_t>(resp.predictions[i].probability),
            out);
  }
}

DecodeError decode_request(std::span<const std::uint8_t> body,
                           WireRequest& out) {
  if (body.size() != kRequestBodyBytes) {
    return fail("request body " + std::to_string(body.size()) + " bytes, expected " +
                std::to_string(kRequestBodyBytes));
  }
  if (body[0] != kWireVersion) {
    return fail("version " + std::to_string(body[0]) + " != " +
                std::to_string(kWireVersion));
  }
  if ((body[1] & ~kFlagErrorStatus) != 0) {
    return fail("unknown flag bits " + std::to_string(body[1]));
  }
  out.flags = body[1];
  out.client = get_u32(body.data() + 2);
  out.url = get_u32(body.data() + 6);
  out.timestamp = get_u64(body.data() + 10);
  return {};
}

DecodeError decode_response(std::span<const std::uint8_t> body,
                            WireResponse& out) {
  if (body.size() < kResponsePrefixBytes) {
    return fail("response body " + std::to_string(body.size()) +
                " bytes, prefix needs " +
                std::to_string(kResponsePrefixBytes));
  }
  if (body[0] != kWireVersion) {
    return fail("version " + std::to_string(body[0]) + " != " +
                std::to_string(kWireVersion));
  }
  const std::uint8_t status = body[1];
  if (status > static_cast<std::uint8_t>(Status::kError)) {
    return fail("unknown status " + std::to_string(status));
  }
  const std::uint16_t count = get_u16(body.data() + 2);
  // The count must be provable from bytes already in hand — reserve/resize
  // only after the body length confirms the claim, so a flipped count can
  // never size an allocation.
  const std::size_t need = kResponsePrefixBytes + std::size_t{count} * 8;
  if (body.size() != need) {
    return fail("count " + std::to_string(count) + " needs " +
                std::to_string(need) + " bytes, body has " +
                std::to_string(body.size()));
  }
  out.status = static_cast<Status>(status);
  out.snapshot_version = get_u64(body.data() + 4);
  out.predictions.clear();
  out.predictions.reserve(count);
  const std::uint8_t* p = body.data() + kResponsePrefixBytes;
  for (std::uint16_t i = 0; i < count; ++i, p += 8) {
    ppm::Prediction pred;
    pred.url = get_u32(p);
    pred.probability = std::bit_cast<float>(get_u32(p + 4));
    out.predictions.push_back(pred);
  }
  return {};
}

FrameParser::Frame FrameParser::next(std::span<const std::uint8_t> buf) const {
  Frame f;
  if (buf.size() < kFrameHeaderBytes) return f;  // kNeedMore
  const std::uint32_t len = get_u32(buf.data());
  if (len == 0) {
    f.result = Result::kBad;
    f.reason = "frame length 0";
    return f;
  }
  if (len > max_frame_bytes_) {
    f.result = Result::kBad;
    f.reason = "frame length " + std::to_string(len) + " exceeds cap " +
               std::to_string(max_frame_bytes_);
    return f;
  }
  if (buf.size() < kFrameHeaderBytes + len) return f;  // kNeedMore
  f.result = Result::kFrame;
  f.body = buf.subspan(kFrameHeaderBytes, len);
  f.consumed = kFrameHeaderBytes + len;
  return f;
}

}  // namespace webppm::net
