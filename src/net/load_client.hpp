// net::LoadClient — a multi-connection closed-loop replay client for the
// prediction service (DESIGN.md §10).
//
// The client shards a request stream (typically a workload::TraceGenerator
// day) over N connections by client id — every client's clicks stay in
// order on one connection, the invariant that makes over-the-wire replies
// comparable request-for-request with an in-process ModelServer replay —
// and drives each connection closed-loop: the next query is written the
// moment the previous response is read. Blocking sockets, one thread per
// connection; the *server* is the event-driven side under test.
//
// With `record_responses` on, every raw response frame is retained per
// connection, which is what the bench/net_throughput acceptance gate
// byte-compares against locally encoded in-process answers.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "net/backoff.hpp"
#include "net/wire.hpp"
#include "trace/record.hpp"

namespace webppm::net {

struct LoadClientConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::size_t connections = 1;
  /// Keep every raw response frame (header + body) per connection for
  /// byte-identity checks. Off for pure throughput runs.
  bool record_responses = false;
  /// Reject response frames claiming more than this many body bytes. In
  /// batch mode the effective response cap is
  /// max(max_frame_bytes, kDefaultMaxBatchFrameBytes) — a batch response
  /// aggregates many prediction lists in one frame.
  std::uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// 0 = v1 single-query frames (one request per frame, closed loop).
  /// N >= 1 = batch mode: each connection packs up to N queries per v2
  /// batch frame and ping-pongs whole frames. Sub-request order inside a
  /// connection is unchanged, so replies stay comparable
  /// request-for-request with an in-process replay.
  std::size_t batch_size = 0;
  /// Observe mode: send the stream as one-way v3 observe frames (feeding
  /// the server's training tap) instead of queries — nothing is read back
  /// per frame. batch_size sets observations per frame (0 = 256). Each
  /// connection ends with a half-close and waits for the server's FIN;
  /// the server consumes a connection's bytes in order, so the FIN proves
  /// every observation was absorbed before run() returns. responses /
  /// latencies stay zero; `requests` counts observations sent.
  bool observe = false;
  /// Per-exchange retry budget for *transient* failures: a v1 kRetryLater
  /// response (the server's shed signal), a refused connect, EPIPE on
  /// write, or the connection dropping mid-read. 0 (default) fails fast —
  /// exactly the historical behavior every byte-identity gate was built
  /// on. With N > 0, each exchange is attempted up to N+1 times with
  /// capped exponential backoff + jitter, reconnecting first whenever the
  /// socket died; the retry/reconnect counters in the result keep latency
  /// percentiles honest (a retried exchange reports its *total* elapsed
  /// time, not just the final attempt's). Per-entry kRetryLater statuses
  /// inside a v2 batch response are final, never retried — sibling entries
  /// in the same frame already consumed their click, so resending the
  /// frame would double-feed their sessions.
  std::size_t max_retries = 0;
  /// Backoff schedule for those retries (see net/backoff.hpp).
  BackoffPolicy retry_backoff{};
  /// Seed for the backoff jitter stream; connection i uses retry_seed + i
  /// so threads draw independent, reproducible delay sequences.
  std::uint64_t retry_seed = 1;
};

struct LoadClientResult {
  bool ok = false;
  std::string error;  ///< first failure across connections
  std::uint64_t requests = 0;
  std::uint64_t responses = 0;
  /// Responses by wire status, indexed by Status.
  std::array<std::uint64_t, 6> status_counts{};
  /// Transient-failure retries taken (kRetryLater, connect/IO failure).
  /// Always 0 when max_retries == 0.
  std::uint64_t retries = 0;
  /// Successful re-connects after the original socket died.
  std::uint64_t reconnects = 0;
  double seconds = 0.0;
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  /// Raw response frames, [connection][frame index], in send order.
  /// Populated only with record_responses. In batch mode each entry is one
  /// v2 batch frame (carrying up to batch_size sub-responses). Retried
  /// exchanges record only the final frame — kRetryLater frames that were
  /// retried away are counted in status_counts/retries, not recorded, so
  /// a retrying replay still byte-compares 1:1 against an in-process one.
  std::vector<std::vector<std::vector<std::uint8_t>>> frames;
};

class LoadClient {
 public:
  explicit LoadClient(LoadClientConfig config) : config_(std::move(config)) {}

  /// Shards `requests` by client id over `connections` lists, preserving
  /// each client's order. The same sharding a caller uses to reproduce
  /// answers in-process.
  static std::vector<std::vector<WireRequest>> shard(
      std::span<const trace::Request> requests, std::size_t connections);

  /// trace::Request → its wire form (error statuses fold into the flag).
  static WireRequest to_wire(const trace::Request& r);

  /// Replays the stream once, closed-loop per connection. Blocks until
  /// every connection finishes (or fails — a dropped connection fails that
  /// shard, recorded in `error`, the rest continue).
  LoadClientResult run(std::span<const trace::Request> requests) const;

  /// Same, over pre-sharded wire requests (shard i → connection i).
  LoadClientResult run_sharded(
      const std::vector<std::vector<WireRequest>>& shards) const;

  const LoadClientConfig& config() const { return config_; }

 private:
  LoadClientConfig config_;
};

/// One blocking admin-endpoint fetch ("/metrics", "/healthz"): returns the
/// response body, or empty with `*error` set. Shared by the bench's scrape
/// artifact and the loopback tests.
std::string fetch_admin(const std::string& host, std::uint16_t port,
                        const std::string& path, std::string* error,
                        std::string* status_line = nullptr);

/// Parsed GET /healthz body — the canonical reader of the format
/// PredictServer's admin listener emits (state word, then `version N`,
/// `degraded 0|1`, `drift 0|1`, `draining 0|1` lines). The cluster
/// prober and ShardSupervisor use it to check version skew without a
/// second /snapshot round-trip.
struct HealthzInfo {
  std::string state;  ///< "ok", "degraded", "drift", "no-model", "draining"
  std::uint64_t version = 0;  ///< serving snapshot version (0 = none)
  bool degraded = false;
  bool drift = false;
  bool draining = false;
  /// The shard is answering queries (possibly degraded) rather than
  /// refusing them.
  bool serving() const {
    return state == "ok" || state == "degraded" || state == "drift";
  }
};

/// Parses a /healthz body into `out`. Returns false (leaving `out`
/// default) when the body does not start with a known state word —
/// e.g. an error page from something that is not a PredictServer.
/// Missing field lines parse as their defaults so a newer reader still
/// understands an older server.
bool parse_healthz(const std::string& body, HealthzInfo& out);

}  // namespace webppm::net
