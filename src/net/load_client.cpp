#include "net/load_client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>

#include "net/event_loop.hpp"

namespace webppm::net {
namespace {

using Clock = std::chrono::steady_clock;

std::string errno_string() { return std::strerror(errno); }

/// Blocking connect to host:port; TCP_NODELAY set (closed-loop ping-pong).
OwnedFd connect_to(const std::string& host, std::uint16_t port,
                   std::string* error) {
  OwnedFd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) {
    *error = "socket: " + errno_string();
    return {};
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    *error = "inet_pton " + host + ": invalid address";
    return {};
  }
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    *error = "connect " + host + ":" + std::to_string(port) + ": " +
             errno_string();
    return {};
  }
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

bool write_all(int fd, const std::uint8_t* data, std::size_t len,
               std::string* error) {
  std::size_t done = 0;
  while (done < len) {
    // MSG_NOSIGNAL: a server that drops us mid-replay (shed, shutdown)
    // must surface as EPIPE, not kill the process with SIGPIPE.
    const ssize_t n = ::send(fd, data + done, len - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      *error = "write: " + errno_string();
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

bool read_exact(int fd, std::uint8_t* data, std::size_t len,
                std::string* error) {
  std::size_t done = 0;
  while (done < len) {
    const ssize_t n = ::read(fd, data + done, len - done);
    if (n == 0) {
      *error = "connection closed by server";
      return false;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      *error = "read: " + errno_string();
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

/// Reads one full frame (header + body) into `frame`; validates the
/// header-claimed length against the cap before reading (or sizing) the
/// body, same discipline as the server side.
bool read_frame(int fd, std::uint32_t max_frame_bytes,
                std::vector<std::uint8_t>& frame, std::string* error) {
  frame.resize(kFrameHeaderBytes);
  if (!read_exact(fd, frame.data(), kFrameHeaderBytes, error)) return false;
  const std::uint32_t len =
      static_cast<std::uint32_t>(frame[0]) |
      (static_cast<std::uint32_t>(frame[1]) << 8) |
      (static_cast<std::uint32_t>(frame[2]) << 16) |
      (static_cast<std::uint32_t>(frame[3]) << 24);
  if (len == 0 || len > max_frame_bytes) {
    *error = "response frame length " + std::to_string(len) +
             " outside (0, " + std::to_string(max_frame_bytes) + "]";
    return false;
  }
  frame.resize(kFrameHeaderBytes + len);
  return read_exact(fd, frame.data() + kFrameHeaderBytes, len, error);
}

struct ConnOutcome {
  std::uint64_t requests = 0;
  std::uint64_t responses = 0;
  std::array<std::uint64_t, 6> status_counts{};
  std::uint64_t retries = 0;
  std::uint64_t reconnects = 0;
  std::vector<double> latencies_us;
  std::vector<std::vector<std::uint8_t>> frames;
  std::string error;
};

/// Transient-failure bookkeeping for one exchange: charges one unit of the
/// retry budget and sleeps the backoff delay. Returns false when the budget
/// is spent — the caller fails the connection with `err`.
bool charge_retry(Backoff& backoff,
                  std::size_t& attempts_left, ConnOutcome& oc,
                  const std::string& err) {
  if (attempts_left == 0) {
    oc.error = err.empty() ? "retry budget exhausted" : err;
    return false;
  }
  --attempts_left;
  ++oc.retries;
  std::this_thread::sleep_for(
      std::chrono::milliseconds(backoff.next_delay_ms()));
  return true;
}

/// Re-establishes `fd` if it died. Returns false on connect failure with
/// `*err` set (a transient — the caller charges the retry budget).
bool ensure_connected(OwnedFd& fd, const LoadClientConfig& config,
                      ConnOutcome& oc, std::string* err) {
  if (fd.valid()) return true;
  fd = connect_to(config.host, config.port, err);
  if (!fd.valid()) return false;
  ++oc.reconnects;
  return true;
}

/// Closed-loop v1 replay of one connection's shard: one frame per query.
/// With max_retries > 0, a kRetryLater response or a dead socket is
/// retried (reconnecting as needed) under capped backoff; the query's
/// latency is its *total* elapsed time across attempts.
void run_conn_single(OwnedFd& fd, const LoadClientConfig& config,
                     std::span<const WireRequest> reqs, Backoff& backoff,
                     ConnOutcome& oc) {
  std::vector<std::uint8_t> req_buf, resp_frame;
  for (const auto& req : reqs) {
    req_buf.clear();
    encode_request(req, req_buf);
    const auto q0 = Clock::now();
    std::size_t attempts_left = config.max_retries;
    bool counted = false;  // each query lands in oc.requests exactly once
    for (;;) {
      std::string err;
      if (!ensure_connected(fd, config, oc, &err) ||
          !write_all(fd.get(), req_buf.data(), req_buf.size(), &err)) {
        fd.reset();
        if (!charge_retry(backoff, attempts_left, oc, err)) return;
        continue;
      }
      if (!counted) {
        ++oc.requests;
        counted = true;
      }
      if (!read_frame(fd.get(), config.max_frame_bytes, resp_frame, &err)) {
        fd.reset();
        if (!charge_retry(backoff, attempts_left, oc, err)) return;
        continue;
      }
      WireResponse resp;
      const auto derr = decode_response(
          std::span<const std::uint8_t>(resp_frame)
              .subspan(kFrameHeaderBytes),
          resp);
      if (!derr.ok()) {
        oc.error = "response decode: " + derr.reason;
        return;
      }
      if (resp.status == Status::kRetryLater && attempts_left > 0) {
        // Shed signal: the server closes the connection right after this
        // frame, so drop the socket and retry the same query on a fresh
        // one. Counted in status_counts + retries, never recorded — the
        // final successful frame is what byte-identity compares.
        ++oc.status_counts[static_cast<std::size_t>(resp.status)];
        fd.reset();
        if (!charge_retry(backoff, attempts_left, oc, {})) return;
        continue;
      }
      oc.latencies_us.push_back(
          std::chrono::duration<double, std::micro>(Clock::now() - q0)
              .count());
      ++oc.responses;
      ++oc.status_counts[static_cast<std::size_t>(resp.status)];
      if (config.record_responses) oc.frames.push_back(resp_frame);
      break;
    }
    backoff.reset();
  }
}

/// Closed-loop v2 replay: up to batch_size queries per frame. The batch
/// frame's round-trip is recorded once per sub-request — every query in it
/// left and returned on the same wire exchange, so that *is* each one's
/// latency; percentiles stay per-request and comparable with v1 runs.
/// Retry semantics (max_retries > 0): a whole-frame v1 kRetryLater answer
/// (the server shed the frame before touching any entry) and dead-socket
/// IO are retried like the v1 path; per-entry kRetryLater statuses inside
/// a decoded batch are final — their siblings already consumed their
/// clicks, so resending the frame would double-feed those sessions.
void run_conn_batched(OwnedFd& fd, const LoadClientConfig& config,
                      std::span<const WireRequest> reqs, Backoff& backoff,
                      ConnOutcome& oc) {
  const std::uint32_t resp_cap =
      std::max(config.max_frame_bytes, kDefaultMaxBatchFrameBytes);
  std::vector<std::uint8_t> req_buf, resp_frame;
  std::vector<WireResponse> subs;
  for (std::size_t off = 0; off < reqs.size(); off += config.batch_size) {
    const std::size_t n = std::min(config.batch_size, reqs.size() - off);
    req_buf.clear();
    encode_batch_request(reqs.subspan(off, n), req_buf);
    const auto q0 = Clock::now();
    std::size_t attempts_left = config.max_retries;
    bool counted = false;
    for (;;) {
      std::string err;
      if (!ensure_connected(fd, config, oc, &err) ||
          !write_all(fd.get(), req_buf.data(), req_buf.size(), &err)) {
        fd.reset();
        if (!charge_retry(backoff, attempts_left, oc, err)) return;
        continue;
      }
      if (!counted) {
        oc.requests += n;
        counted = true;
      }
      if (!read_frame(fd.get(), resp_cap, resp_frame, &err)) {
        fd.reset();
        if (!charge_retry(backoff, attempts_left, oc, err)) return;
        continue;
      }
      const auto body = std::span<const std::uint8_t>(resp_frame)
                            .subspan(kFrameHeaderBytes);
      if (frame_version(body) == kWireVersion && attempts_left > 0) {
        // A v1 frame answering a v2 batch is the shed path: the server
        // refused the whole frame (kRetryLater) before decoding entries.
        WireResponse shed;
        if (decode_response(body, shed).ok() &&
            shed.status == Status::kRetryLater) {
          ++oc.status_counts[static_cast<std::size_t>(shed.status)];
          fd.reset();
          if (!charge_retry(backoff, attempts_left, oc, {})) return;
          continue;
        }
      }
      const auto derr = decode_batch_response(body, subs);
      if (!derr.ok()) {
        oc.error = "batch response decode: " + derr.reason;
        return;
      }
      if (subs.size() != n) {
        oc.error = "batch response carries " + std::to_string(subs.size()) +
                   " sub-responses, sent " + std::to_string(n);
        return;
      }
      const double rtt_us =
          std::chrono::duration<double, std::micro>(Clock::now() - q0)
              .count();
      for (const auto& sub : subs) {
        ++oc.status_counts[static_cast<std::size_t>(sub.status)];
        oc.latencies_us.push_back(rtt_us);
      }
      oc.responses += n;
      if (config.record_responses) oc.frames.push_back(resp_frame);
      break;
    }
    backoff.reset();
  }
}

/// One-way v3 replay: observations-per-frame observe frames, no responses.
/// After the stream the connection half-closes and waits for the server's
/// FIN — the server consumes a connection's bytes in order, so the FIN
/// proves every frame was decoded and fed to the observer tap before the
/// client returns (the sync barrier the online-training convergence gate
/// leans on). Dead-socket IO retries reconnect-and-resend the current
/// frame; with no per-frame acknowledgement a resend can double-feed the
/// trainer, so determinism-sensitive runs use max_retries = 0.
void run_conn_observe(OwnedFd& fd, const LoadClientConfig& config,
                      std::span<const WireRequest> reqs, Backoff& backoff,
                      ConnOutcome& oc) {
  constexpr std::size_t kDefaultPerFrame = 256;
  const std::size_t per_frame =
      config.batch_size == 0 ? kDefaultPerFrame : config.batch_size;
  std::vector<std::uint8_t> req_buf;
  for (std::size_t off = 0; off < reqs.size(); off += per_frame) {
    const std::size_t n = std::min(per_frame, reqs.size() - off);
    req_buf.clear();
    encode_observe_frame(reqs.subspan(off, n), req_buf);
    std::size_t attempts_left = config.max_retries;
    for (;;) {
      std::string err;
      if (!ensure_connected(fd, config, oc, &err) ||
          !write_all(fd.get(), req_buf.data(), req_buf.size(), &err)) {
        fd.reset();
        if (!charge_retry(backoff, attempts_left, oc, err)) return;
        continue;
      }
      oc.requests += n;
      break;
    }
    backoff.reset();
  }
  if (!fd.valid()) return;
  ::shutdown(fd.get(), SHUT_WR);
  std::uint8_t byte = 0;
  for (;;) {
    const ssize_t n = ::read(fd.get(), &byte, 1);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // FIN (or error): the server is done with our bytes
  }
  fd.reset();
}

}  // namespace

WireRequest LoadClient::to_wire(const trace::Request& r) {
  WireRequest w;
  w.client = r.client;
  w.url = r.url;
  w.timestamp = r.timestamp;
  w.flags = r.status >= 400 ? kFlagErrorStatus : std::uint8_t{0};
  return w;
}

std::vector<std::vector<WireRequest>> LoadClient::shard(
    std::span<const trace::Request> requests, std::size_t connections) {
  std::vector<std::vector<WireRequest>> shards(
      connections == 0 ? 1 : connections);
  for (const auto& r : requests) {
    shards[r.client % shards.size()].push_back(to_wire(r));
  }
  return shards;
}

LoadClientResult LoadClient::run(
    std::span<const trace::Request> requests) const {
  return run_sharded(shard(requests, config_.connections));
}

LoadClientResult LoadClient::run_sharded(
    const std::vector<std::vector<WireRequest>>& shards) const {
  std::vector<ConnOutcome> outcomes(shards.size());

  const auto t0 = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(shards.size());
  for (std::size_t i = 0; i < shards.size(); ++i) {
    threads.emplace_back([this, &shards, &outcomes, i] {
      ConnOutcome& oc = outcomes[i];
      OwnedFd fd = connect_to(config_.host, config_.port, &oc.error);
      if (!fd.valid() && config_.max_retries == 0) return;
      if (config_.record_responses) oc.frames.reserve(shards[i].size());
      oc.latencies_us.reserve(shards[i].size());
      Backoff backoff(config_.retry_backoff, config_.retry_seed + i);
      oc.error.clear();  // a failed first connect retries inside run_conn_*
      if (config_.observe) {
        run_conn_observe(fd, config_, shards[i], backoff, oc);
      } else if (config_.batch_size == 0) {
        run_conn_single(fd, config_, shards[i], backoff, oc);
      } else {
        run_conn_batched(fd, config_, shards[i], backoff, oc);
      }
    });
  }
  for (auto& t : threads) t.join();
  const double seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();

  LoadClientResult res;
  res.ok = true;
  res.seconds = seconds;
  std::vector<double> all;
  for (auto& oc : outcomes) {
    res.requests += oc.requests;
    res.responses += oc.responses;
    res.retries += oc.retries;
    res.reconnects += oc.reconnects;
    for (std::size_t s = 0; s < oc.status_counts.size(); ++s) {
      res.status_counts[s] += oc.status_counts[s];
    }
    all.insert(all.end(), oc.latencies_us.begin(), oc.latencies_us.end());
    if (!oc.error.empty() && res.error.empty()) {
      res.ok = false;
      res.error = "connection " + std::to_string(&oc - outcomes.data()) +
                  ": " + oc.error;
    }
    if (config_.record_responses) res.frames.push_back(std::move(oc.frames));
  }
  std::sort(all.begin(), all.end());
  if (!all.empty()) {
    res.p50_us = all[all.size() / 2];
    res.p99_us = all[std::min(all.size() - 1, all.size() * 99 / 100)];
  }
  res.qps = seconds > 0 ? static_cast<double>(res.responses) / seconds : 0.0;
  return res;
}

std::string fetch_admin(const std::string& host, std::uint16_t port,
                        const std::string& path, std::string* error,
                        std::string* status_line) {
  std::string err;
  OwnedFd fd = connect_to(host, port, &err);
  if (!fd.valid()) {
    if (error != nullptr) *error = err;
    return {};
  }
  const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
  if (!write_all(fd.get(), reinterpret_cast<const std::uint8_t*>(req.data()),
                 req.size(), &err)) {
    if (error != nullptr) *error = err;
    return {};
  }
  std::string raw;
  char buf[4096];
  while (true) {
    const ssize_t n = ::read(fd.get(), buf, sizeof buf);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // server closes after one exchange
    raw.append(buf, static_cast<std::size_t>(n));
  }
  const auto sep = raw.find("\r\n\r\n");
  if (sep == std::string::npos) {
    if (error != nullptr) *error = "malformed admin response";
    return {};
  }
  if (status_line != nullptr) {
    *status_line = raw.substr(0, raw.find("\r\n"));
  }
  if (error != nullptr) error->clear();
  return raw.substr(sep + 4);
}

bool parse_healthz(const std::string& body, HealthzInfo& out) {
  out = HealthzInfo{};
  std::size_t pos = 0;
  std::size_t line_no = 0;
  while (pos < body.size()) {
    std::size_t eol = body.find('\n', pos);
    if (eol == std::string::npos) eol = body.size();
    const std::string line = body.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    if (line_no++ == 0) {
      if (line != "ok" && line != "degraded" && line != "drift" &&
          line != "no-model" && line != "draining") {
        out = HealthzInfo{};
        return false;
      }
      out.state = line;
      continue;
    }
    const auto sp = line.find(' ');
    if (sp == std::string::npos) continue;  // unknown line shape: skip
    const std::string key = line.substr(0, sp);
    const std::string val = line.substr(sp + 1);
    if (key == "version") {
      out.version = std::strtoull(val.c_str(), nullptr, 10);
    } else if (key == "degraded") {
      out.degraded = (val == "1");
    } else if (key == "drift") {
      out.drift = (val == "1");
    } else if (key == "draining") {
      out.draining = (val == "1");
    }
    // Unknown keys are skipped: an older reader still understands a newer
    // server.
  }
  return line_no > 0;
}

}  // namespace webppm::net
