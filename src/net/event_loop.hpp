// webppm::net event-loop primitives (DESIGN.md §10): a thin epoll wrapper
// with an eventfd wake channel, an owned-fd RAII handle, and the lazy
// timing wheel the connection idle timeout rides on.
//
// Ownership model: every fd is owned by exactly one thread's EventLoop —
// the acceptor owns the listen and admin fds, each loop worker owns the
// connection fds dispatched to it. Cross-thread communication is
// inbox-plus-wake only (the acceptor pushes accepted fds into a worker's
// inbox and wakes its eventfd); no fd is ever touched by two threads.
#pragma once

#include <sys/epoll.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace webppm::net {

/// Close-on-destruct fd handle (move-only).
class OwnedFd {
 public:
  OwnedFd() = default;
  explicit OwnedFd(int fd) : fd_(fd) {}
  ~OwnedFd() { reset(); }
  OwnedFd(OwnedFd&& o) noexcept : fd_(o.release()) {}
  OwnedFd& operator=(OwnedFd&& o) noexcept {
    if (this != &o) {
      reset();
      fd_ = o.release();
    }
    return *this;
  }
  OwnedFd(const OwnedFd&) = delete;
  OwnedFd& operator=(const OwnedFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// Sets O_NONBLOCK; returns false on fcntl failure.
bool set_nonblocking(int fd);

/// Monotonic milliseconds (CLOCK_MONOTONIC), the loop's time base.
std::uint64_t now_ms();

/// One epoll set plus an eventfd wake channel. Used from its owning thread
/// only, except wake(), which any thread may call.
class EventLoop {
 public:
  EventLoop();
  ~EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// False when epoll/eventfd creation failed (error() says why).
  bool ok() const { return epoll_.valid() && wake_.valid(); }
  const std::string& error() const { return error_; }

  bool add(int fd, std::uint32_t events, void* data);
  bool mod(int fd, std::uint32_t events, void* data);
  void del(int fd);

  /// Blocks up to timeout_ms (-1 = forever) and fills `out` with ready
  /// events. Returns the event count; EINTR reads as 0.
  int wait(int timeout_ms, std::vector<epoll_event>& out);

  /// Wakes a wait() in progress (or the next one). Thread-safe.
  void wake();

  /// The wake channel's read end; the wrapper registers it itself with
  /// `data == wake_tag()`. Callers seeing that tag call drain_wake().
  void* wake_tag() const { return const_cast<int*>(&wake_fd_tag_); }
  void drain_wake();

 private:
  OwnedFd epoll_;
  OwnedFd wake_;
  int wake_fd_tag_ = 0;  ///< address used as the wake event's epoll data
  std::string error_;
};

/// Lazy timing wheel for connection idle timeouts: slots of `granularity`
/// milliseconds, entries hashed by deadline. Entries are *hints* —
/// schedule() never removes an earlier entry for the same key, and a
/// deadline past the wheel horizon parks in the furthest slot — so the
/// owner re-checks the key's authoritative deadline when an entry fires
/// and re-schedules if it moved. That makes scheduling O(1) with zero
/// bookkeeping on the hot path (every request would otherwise pay a
/// delete+insert).
class TimeoutWheel {
 public:
  TimeoutWheel(std::uint64_t granularity_ms, std::size_t slots,
               std::uint64_t start_ms);

  void schedule(std::uint64_t key, std::uint64_t deadline_ms);

  /// Advances the wheel cursor to `now_ms`, firing cb(key) for every entry
  /// whose slot has passed.
  void advance(std::uint64_t now_ms,
               const std::function<void(std::uint64_t)>& cb);

  /// Milliseconds until the next non-empty slot fires (granularity-coarse);
  /// -1 when the wheel is empty. Feed to EventLoop::wait().
  int next_timeout_ms(std::uint64_t now_ms) const;

  std::size_t pending() const { return pending_; }
  std::uint64_t granularity_ms() const { return granularity_ms_; }

 private:
  std::size_t slot_of(std::uint64_t ms) const {
    return static_cast<std::size_t>(ms / granularity_ms_) % slots_.size();
  }

  std::uint64_t granularity_ms_;
  std::vector<std::vector<std::uint64_t>> slots_;
  std::uint64_t cursor_ms_;  ///< wheel has fired everything before this
  std::size_t pending_ = 0;
};

}  // namespace webppm::net
