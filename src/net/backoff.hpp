// Capped exponential backoff with seeded, deterministic jitter.
//
// Shared by the cluster router's upstream retry loop and LoadClient's
// kRetryLater/reconnect handling. The jitter source is a private xorshift64
// stream seeded by the caller, so a replay with the same seed produces the
// same delay sequence — the same property the fault framework relies on for
// reproducible chaos runs. The helper only computes delays; sleeping is the
// caller's job (some callers want to wait on a condition variable instead so
// a shutdown can interrupt the backoff).
#pragma once

#include <algorithm>
#include <cstdint>

namespace webppm::net {

struct BackoffPolicy {
  /// Delay before the first retry. 0 is pinned to 1 ms — a zero base would
  /// make every subsequent delay zero too and turn retries into a busy spin.
  std::uint64_t initial_ms = 1;
  /// Ceiling the exponential growth saturates at.
  std::uint64_t max_ms = 200;
  /// Growth factor between consecutive retries.
  double multiplier = 2.0;
  /// Fraction of each delay that is randomized: the returned delay is
  /// uniform in [delay * (1 - jitter), delay]. 0 disables jitter entirely;
  /// values are clamped to [0, 1].
  double jitter = 0.5;
};

class Backoff {
 public:
  explicit Backoff(BackoffPolicy policy, std::uint64_t seed = 1)
      : policy_(policy), state_(seed ? seed : 0x9e3779b97f4a7c15ull) {
    policy_.initial_ms = std::max<std::uint64_t>(policy_.initial_ms, 1);
    policy_.max_ms = std::max(policy_.max_ms, policy_.initial_ms);
    policy_.multiplier = std::max(policy_.multiplier, 1.0);
    policy_.jitter = std::clamp(policy_.jitter, 0.0, 1.0);
    reset();
  }

  /// Delay to wait before the next retry, advancing the schedule.
  std::uint64_t next_delay_ms() {
    const double base = cur_;
    cur_ = std::min(cur_ * policy_.multiplier,
                    static_cast<double>(policy_.max_ms));
    if (policy_.jitter == 0.0) return static_cast<std::uint64_t>(base);
    // Map a 53-bit draw to [0, 1): enough entropy for a delay spread and
    // exactly representable in a double.
    const double u =
        static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
    const double lo = base * (1.0 - policy_.jitter);
    const double d = lo + (base - lo) * u;
    // Round up so jitter never turns a 1 ms floor into a busy spin.
    return static_cast<std::uint64_t>(d) + ((d > 0.0) ? 1 : 0);
  }

  /// Restart the schedule from the initial delay (after a success).
  void reset() { cur_ = static_cast<double>(policy_.initial_ms); }

  const BackoffPolicy& policy() const { return policy_; }

 private:
  std::uint64_t next_u64() {
    std::uint64_t x = state_;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    state_ = x;
    return x * 0x2545f4914f6cdd1dull;
  }

  BackoffPolicy policy_;
  double cur_ = 1.0;
  std::uint64_t state_;
};

}  // namespace webppm::net
