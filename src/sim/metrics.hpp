// Performance metrics of one simulation run (paper §2.3):
//   hit ratio            — cache hits / total requests
//   latency reduction    — computed by the caller against a no-prefetch run
//   traffic increment    — (transferred - useful) / useful bytes
// plus the model-behaviour counters behind Fig. 2 (popular share of
// prefetch hits).
#pragma once

#include <cstdint>

namespace webppm::sim {

struct Metrics {
  std::uint64_t requests = 0;
  std::uint64_t hits = 0;                  ///< all cache hits
  std::uint64_t browser_hits = 0;          ///< proxy mode: hits at browsers
  std::uint64_t proxy_hits = 0;            ///< proxy mode: hits at the proxy
  std::uint64_t prefetch_hits = 0;         ///< first hits on prefetched docs
  std::uint64_t popular_prefetch_hits = 0; ///< ... whose URL has grade >= 2
  std::uint64_t demand_misses = 0;
  std::uint64_t prefetches_sent = 0;

  std::uint64_t bytes_demand = 0;          ///< server->client demand bytes
  std::uint64_t bytes_prefetched = 0;      ///< server->client prefetch bytes
  std::uint64_t bytes_prefetch_used = 0;   ///< prefetched bytes later hit

  double latency_seconds = 0.0;            ///< summed per-request latency

  double hit_ratio() const {
    return requests == 0
               ? 0.0
               : static_cast<double>(hits) / static_cast<double>(requests);
  }

  /// (total transferred bytes / useful bytes) - 1 (paper §2.3). Useful =
  /// demand bytes + prefetched bytes that were eventually used.
  double traffic_increment() const {
    const auto useful = bytes_demand + bytes_prefetch_used;
    if (useful == 0) return 0.0;
    const auto transferred = bytes_demand + bytes_prefetched;
    return static_cast<double>(transferred) / static_cast<double>(useful) -
           1.0;
  }

  /// Fraction of prefetch hits on popular (grade >= 2) documents
  /// (Fig. 2 left).
  double popular_share_of_prefetch_hits() const {
    return prefetch_hits == 0
               ? 0.0
               : static_cast<double>(popular_prefetch_hits) /
                     static_cast<double>(prefetch_hits);
  }

  /// Prefetch precision: fraction of sent prefetches that were used.
  double prefetch_accuracy() const {
    return prefetches_sent == 0
               ? 0.0
               : static_cast<double>(prefetch_hits) /
                     static_cast<double>(prefetches_sent);
  }
};

/// Latency-reduction rate of a prefetching run against its no-prefetch
/// baseline (identical caches, prediction disabled).
inline double latency_reduction(const Metrics& with_prefetch,
                                const Metrics& baseline) {
  if (baseline.latency_seconds <= 0.0) return 0.0;
  return 1.0 - with_prefetch.latency_seconds / baseline.latency_seconds;
}

}  // namespace webppm::sim
