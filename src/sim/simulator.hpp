// Trace-driven prefetching simulator (paper §2.2): a Web server holding a
// trained prediction model serves a stream of client requests, piggybacking
// prefetched documents onto responses. Clients (browsers or proxies) hold
// LRU caches; hits, latency, and traffic are accounted per §2.3.
//
// Two topologies:
//   * simulate_direct  — §4 experiments: every trace client talks straight
//     to the server; its cache size depends on its browser/proxy
//     classification (10 MB vs 16 GB).
//   * simulate_proxy_group — §5 experiments: a chosen set of browser
//     clients shares one proxy cache; prefetched documents are pushed to
//     the proxy, and total hits = browser hits + proxy hits (cached or
//     prefetched).
#pragma once

#include <span>
#include <vector>

#include "cache/document_cache.hpp"
#include "net/latency.hpp"
#include "obs/metrics.hpp"
#include "popularity/popularity.hpp"
#include "ppm/predictor.hpp"
#include "session/session.hpp"
#include "sim/metrics.hpp"
#include "trace/record.hpp"

namespace webppm::sim {

struct PrefetchPolicy {
  bool enabled = true;
  /// Documents larger than this are never prefetched (paper §4.1: 30 KB for
  /// PB-PPM, 100 KB for the standard and LRS models; §5 sweeps 40/100 KB).
  std::uint64_t size_threshold_bytes = 100 * 1024;
  /// Safety cap on prefetches piggybacked per request.
  std::size_t max_prefetch_per_request = 16;
};

struct EndpointConfig {
  std::uint64_t browser_cache_bytes = 10ull << 20;  ///< 10 MB (§2.2)
  std::uint64_t proxy_cache_bytes = 16ull << 30;    ///< 16 GB (§2.2)
  /// Replacement policy for every cache (paper: LRU; GDSF available for
  /// the cache-policy ablation).
  cache::Policy cache_policy = cache::Policy::kLru;
  /// Session context handling must mirror training: idle gap that resets
  /// the context, context window length, and reload deduplication.
  TimeSec idle_timeout = 30 * 60;
  std::size_t context_window = 16;
  bool dedup_consecutive = true;
};

struct SimulationConfig {
  PrefetchPolicy policy;
  EndpointConfig endpoints;
  net::LatencyModel latency{0.35, 1.0 / (64.0 * 1024.0)};
  /// Latency of a proxy-cache hit as a fraction of a server fetch's
  /// connect time (LAN hop; browsers hits cost zero).
  double proxy_hit_connect_fraction = 0.1;
};

/// One piggyback prediction pass as the simulator issued it: which client,
/// on which click, and the model's full candidate list before the prefetch
/// policy (size threshold, cache state, per-request cap) filtered it.
struct PredictionLogEntry {
  ClientId client = 0;
  UrlId current = kInvalidUrl;
  std::vector<ppm::Prediction> predictions;
};

struct PredictionLog {
  std::vector<PredictionLogEntry> entries;
};

/// Optional observer taps on a simulation run. The simulator itself never
/// mutates the model; callers who want the paper's path-utilisation metric
/// pass a UsageScratch here and read model.path_usage(scratch) (or fold it
/// in with apply_usage) afterwards. The prediction log records every
/// piggyback predict() for external replay verification (bench/serve).
struct SimHooks {
  ppm::UsageScratch* usage = nullptr;
  PredictionLog* prediction_log = nullptr;
  /// Non-null surfaces the run's accounting as webppm_sim_* registry
  /// metrics: per-pass prediction counts (a candidates-per-pass histogram
  /// recorded inline) plus every sim::Metrics field exported as counters
  /// when the run completes. Totals reconcile exactly with the
  /// PredictionLog: prediction_passes_total == entries, predictions_total
  /// == summed candidate-list lengths.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Folds one finished run's accounting into `registry` as webppm_sim_*
/// counters (requests/hits/prefetch hits/wasted prefetches/bytes...).
/// Called automatically by the simulators when hooks.metrics is set;
/// public so external replay drivers can reuse the same metric names.
void export_metrics(const Metrics& m, obs::MetricsRegistry& registry);

/// §4 topology. `trace` supplies URL sizes; `eval` is the evaluation-day
/// request stream (a sub-span of trace.requests). The predictor must have
/// been trained on earlier days. `classes` assigns cache sizes.
Metrics simulate_direct(const trace::Trace& trace,
                        std::span<const trace::Request> eval,
                        const ppm::Predictor& model,
                        const popularity::PopularityTable& popularity,
                        const session::ClientClassification& classes,
                        const SimulationConfig& config,
                        const SimHooks& hooks = {});

/// §5 topology: the given browser clients share one proxy cache.
/// Requests from clients not listed are ignored.
Metrics simulate_proxy_group(const trace::Trace& trace,
                             std::span<const trace::Request> eval,
                             const ppm::Predictor& model,
                             const popularity::PopularityTable& popularity,
                             std::span<const ClientId> clients,
                             const SimulationConfig& config,
                             const SimHooks& hooks = {});

}  // namespace webppm::sim
