#include "sim/simulator.hpp"

#include "obs/trace_event.hpp"
#include "session/online.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <unordered_map>
#include <unordered_set>

namespace webppm::sim {
namespace {

/// Registry handles resolved once per simulation run (registry lookups take
/// a mutex; the prediction loop must not).
struct SimInstruments {
  obs::Counter* passes;        ///< piggyback predict() invocations
  obs::Counter* predictions;   ///< candidates returned across all passes
  obs::LogHistogram* per_pass; ///< candidate-list length distribution
};

std::unique_ptr<SimInstruments> resolve(obs::MetricsRegistry* registry) {
  if (registry == nullptr) return nullptr;
  auto ins = std::make_unique<SimInstruments>();
  ins->passes = &registry->counter("webppm_sim_prediction_passes_total");
  ins->predictions = &registry->counter("webppm_sim_predictions_total");
  ins->per_pass = &registry->histogram("webppm_sim_predictions_per_pass");
  return ins;
}

/// The server keeps a rolling per-client session context with the same
/// rules the batch sessionizer applies to training data.
session::OnlineContext make_context(const EndpointConfig& cfg) {
  session::SessionizerOptions opt;
  opt.idle_timeout = cfg.idle_timeout;
  opt.dedup_consecutive = cfg.dedup_consecutive;
  return session::OnlineContext(opt, cfg.context_window);
}

/// Accounts a hit on `entry`, tracking first use of prefetched documents.
void account_hit(cache::CacheEntry& entry, UrlId url,
                 const popularity::PopularityTable& popularity, Metrics& m) {
  ++m.hits;
  if (entry.origin == cache::InsertClass::kPrefetch && !entry.prefetch_used) {
    entry.prefetch_used = true;
    ++m.prefetch_hits;
    m.bytes_prefetch_used += entry.size_bytes;
    if (popularity.is_popular(url)) ++m.popular_prefetch_hits;
  }
}

/// Issues prefetches for the given context into `target` cache.
void issue_prefetches(const trace::Trace& trace, const ppm::Predictor& model,
                      ClientId client, std::span<const UrlId> context,
                      UrlId current, cache::DocumentCache& target,
                      const SimulationConfig& cfg, const SimHooks& hooks,
                      const SimInstruments* ins,
                      std::vector<ppm::Prediction>& scratch, Metrics& m) {
  if (!cfg.policy.enabled || context.empty()) return;
  model.predict(context, scratch, hooks.usage);
  if (hooks.prediction_log != nullptr) {
    hooks.prediction_log->entries.push_back({client, current, scratch});
  }
  if (ins != nullptr) {
    ins->passes->add();
    ins->predictions->add(scratch.size());
    ins->per_pass->record(scratch.size());
  }
  std::size_t sent = 0;
  for (const auto& p : scratch) {
    if (sent >= cfg.policy.max_prefetch_per_request) break;
    if (p.url == current) continue;  // just delivered
    const std::uint32_t size = trace.url_size(p.url);
    if (size == 0 || size > cfg.policy.size_threshold_bytes) continue;
    if (target.contains(p.url)) continue;  // already cached
    target.insert(p.url, size, cache::InsertClass::kPrefetch);
    m.bytes_prefetched += size;
    ++m.prefetches_sent;
    ++sent;
  }
}

}  // namespace

void export_metrics(const Metrics& m, obs::MetricsRegistry& registry) {
  registry.counter("webppm_sim_requests_total").add(m.requests);
  registry.counter("webppm_sim_hits_total").add(m.hits);
  registry.counter("webppm_sim_browser_hits_total").add(m.browser_hits);
  registry.counter("webppm_sim_proxy_hits_total").add(m.proxy_hits);
  registry.counter("webppm_sim_prefetch_hits_total").add(m.prefetch_hits);
  registry.counter("webppm_sim_popular_prefetch_hits_total")
      .add(m.popular_prefetch_hits);
  registry.counter("webppm_sim_demand_misses_total").add(m.demand_misses);
  registry.counter("webppm_sim_prefetches_sent_total").add(m.prefetches_sent);
  // A sent prefetch whose document is never demanded is wasted traffic
  // (the denominator of the paper's traffic-increment metric).
  const std::uint64_t wasted =
      m.prefetches_sent > m.prefetch_hits ? m.prefetches_sent - m.prefetch_hits
                                          : 0;
  registry.counter("webppm_sim_prefetches_wasted_total").add(wasted);
  registry.counter("webppm_sim_bytes_demand_total").add(m.bytes_demand);
  registry.counter("webppm_sim_bytes_prefetched_total")
      .add(m.bytes_prefetched);
  registry.counter("webppm_sim_bytes_prefetch_used_total")
      .add(m.bytes_prefetch_used);
  // latency_seconds is a double; nanoseconds keep counter integrality
  // without losing meaningful precision at trace scale.
  registry.counter("webppm_sim_latency_ns_total")
      .add(static_cast<std::uint64_t>(std::llround(
          std::max(0.0, m.latency_seconds) * 1e9)));
}

Metrics simulate_direct(const trace::Trace& trace,
                        std::span<const trace::Request> eval,
                        const ppm::Predictor& model,
                        const popularity::PopularityTable& popularity,
                        const session::ClientClassification& classes,
                        const SimulationConfig& config,
                        const SimHooks& hooks) {
  WEBPPM_TRACE("sim.simulate_direct");
  Metrics m;
  const auto ins = resolve(hooks.metrics);
  struct ClientState {
    std::unique_ptr<cache::DocumentCache> cache;
    session::OnlineContext context;
    ClientState(cache::Policy policy, std::uint64_t bytes,
                const EndpointConfig& endpoints)
        : cache(cache::make_cache(policy, bytes)),
          context(make_context(endpoints)) {}
  };
  std::unordered_map<ClientId, ClientState> clients;
  std::vector<ppm::Prediction> scratch;

  for (const auto& r : eval) {
    if (r.status >= 400) continue;
    ++m.requests;

    auto it = clients.find(r.client);
    if (it == clients.end()) {
      const bool proxy =
          r.client < classes.is_proxy.size() && classes.is_proxy[r.client];
      it = clients
               .emplace(r.client,
                        ClientState(config.endpoints.cache_policy,
                                    proxy ? config.endpoints.proxy_cache_bytes
                                          : config.endpoints.browser_cache_bytes,
                                    config.endpoints))
               .first;
    }
    ClientState& state = it->second;

    const std::uint32_t size =
        r.size_bytes > 0 ? r.size_bytes : trace.url_size(r.url);
    if (auto* entry = state.cache->lookup(r.url)) {
      account_hit(*entry, r.url, popularity, m);
    } else {
      ++m.demand_misses;
      m.bytes_demand += size;
      m.latency_seconds += config.latency.latency_seconds(size);
      state.cache->insert(r.url, size, cache::InsertClass::kDemand);
    }

    state.context.observe(r.url, r.timestamp);
    issue_prefetches(trace, model, r.client, state.context.view(), r.url,
                     *state.cache, config, hooks, ins.get(), scratch, m);
  }
  if (hooks.metrics != nullptr) export_metrics(m, *hooks.metrics);
  return m;
}

Metrics simulate_proxy_group(const trace::Trace& trace,
                             std::span<const trace::Request> eval,
                             const ppm::Predictor& model,
                             const popularity::PopularityTable& popularity,
                             std::span<const ClientId> clients,
                             const SimulationConfig& config,
                             const SimHooks& hooks) {
  WEBPPM_TRACE("sim.simulate_proxy_group");
  Metrics m;
  const auto ins = resolve(hooks.metrics);
  const std::unordered_set<ClientId> members(clients.begin(), clients.end());

  const auto proxy_cache = cache::make_cache(
      config.endpoints.cache_policy, config.endpoints.proxy_cache_bytes);
  struct BrowserState {
    std::unique_ptr<cache::DocumentCache> cache;
    session::OnlineContext context;
    BrowserState(cache::Policy policy, std::uint64_t bytes,
                 const EndpointConfig& endpoints)
        : cache(cache::make_cache(policy, bytes)),
          context(make_context(endpoints)) {}
  };
  std::unordered_map<ClientId, BrowserState> browsers;
  std::vector<ppm::Prediction> scratch;

  for (const auto& r : eval) {
    if (r.status >= 400 || !members.contains(r.client)) continue;
    ++m.requests;

    auto it = browsers.find(r.client);
    if (it == browsers.end()) {
      it = browsers
               .emplace(r.client,
                        BrowserState(config.endpoints.cache_policy,
                                     config.endpoints.browser_cache_bytes,
                                     config.endpoints))
               .first;
    }
    BrowserState& state = it->second;

    const std::uint32_t size =
        r.size_bytes > 0 ? r.size_bytes : trace.url_size(r.url);
    if (auto* entry = state.cache->lookup(r.url)) {
      ++m.browser_hits;
      account_hit(*entry, r.url, popularity, m);
    } else if (auto* pentry = proxy_cache->lookup(r.url)) {
      ++m.proxy_hits;
      account_hit(*pentry, r.url, popularity, m);
      // LAN hop from proxy to browser; far cheaper than a server fetch.
      m.latency_seconds += config.proxy_hit_connect_fraction *
                           config.latency.connect_seconds();
      state.cache->insert(r.url, size, cache::InsertClass::kDemand);
    } else {
      ++m.demand_misses;
      m.bytes_demand += size;
      m.latency_seconds += config.latency.latency_seconds(size);
      proxy_cache->insert(r.url, size, cache::InsertClass::kDemand);
      state.cache->insert(r.url, size, cache::InsertClass::kDemand);
    }

    // The server predicts per end-client session (the proxy forwards the
    // client's requests); prefetched documents are pushed to the proxy.
    state.context.observe(r.url, r.timestamp);
    issue_prefetches(trace, model, r.client, state.context.view(), r.url,
                     *proxy_cache, config, hooks, ins.get(), scratch, m);
  }
  if (hooks.metrics != nullptr) export_metrics(m, *hooks.metrics);
  return m;
}

}  // namespace webppm::sim
