#include "learn/observation.hpp"

#include <algorithm>

#include "fault/fault.hpp"

namespace webppm::learn {

ObservationQueue::ObservationQueue(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {
  ring_.resize(capacity_);
}

bool ObservationQueue::push(const Observation& o) noexcept {
  // The serve path must never see an exception out of the tap; the only
  // throwing operation here is the mutex (resource exhaustion), and a
  // dropped observation is the designed answer to any failure to enqueue.
  try {
    if (WEBPPM_FAULT_INJECT("learn.queue.push")) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    bool notify = false;
    {
      std::lock_guard lock(mu_);
      if (closed_ || count_ == capacity_) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      ring_[(head_ + count_) % capacity_] = o;
      notify = count_ == 0;
      ++count_;
    }
    pushed_.fetch_add(1, std::memory_order_relaxed);
    if (notify) cv_.notify_one();
    return true;
  } catch (...) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
}

std::size_t ObservationQueue::drain(std::vector<Observation>& out) {
  std::lock_guard lock(mu_);
  const std::size_t n = count_;
  out.reserve(out.size() + n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(ring_[(head_ + i) % capacity_]);
  }
  head_ = (head_ + n) % capacity_;
  count_ = 0;
  return n;
}

std::size_t ObservationQueue::drain_wait(std::vector<Observation>& out,
                                         std::chrono::milliseconds timeout) {
  std::unique_lock lock(mu_);
  cv_.wait_for(lock, timeout, [this] { return count_ != 0 || closed_; });
  const std::size_t n = count_;
  out.reserve(out.size() + n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(ring_[(head_ + i) % capacity_]);
  }
  head_ = (head_ + n) % capacity_;
  count_ = 0;
  return n;
}

void ObservationQueue::close() {
  {
    std::lock_guard lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool ObservationQueue::closed() const {
  std::lock_guard lock(mu_);
  return closed_;
}

std::size_t ObservationQueue::size() const {
  std::lock_guard lock(mu_);
  return count_;
}

}  // namespace webppm::learn
