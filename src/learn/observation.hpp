// learn::ObservationQueue — the bounded handoff between the serving hot
// path and the online trainer (DESIGN.md §15).
//
// The queue is the serve-side half of the training pipeline: it implements
// serve::RequestObserver, so attaching it to a ModelServer
// (attach_observer(&trainer.queue())) makes every admitted request —
// queries, batch entries, and v3 observe-frame entries alike — land here
// as a compact Observation, in arrival order per query thread.
//
// Contract inherited from RequestObserver: on_request runs on the query
// thread under no lock of the server's and must be cheap, thread-safe and
// noexcept. push() is therefore *non-blocking*: when the trainer falls
// behind and the ring is full, the observation is dropped and counted —
// serving latency is never held hostage to training throughput. Dropped
// observations cost training coverage, not correctness: the trainer's
// shadow model just learns from a sampled stream until it catches up
// (dropped_total is the gauge to alarm on).
//
// Fault site (chaos suite): learn.queue.push — a firing rule drops the
// observation exactly as a full ring would, proving the serve path is
// indifferent to observation loss.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "serve/model_server.hpp"
#include "trace/record.hpp"
#include "util/types.hpp"

namespace webppm::learn {

/// One observed request, compacted to what training consumes: the
/// sessionizer keys on (timestamp, client, url) and the popularity table
/// counts every request including errors, so the status survives as a
/// flag-sized field while size_bytes/method (never read by training) are
/// dropped.
struct Observation {
  TimeSec timestamp = 0;
  ClientId client = 0;
  UrlId url = 0;
  std::uint16_t status = 200;

  static Observation from(const trace::Request& r) {
    return Observation{r.timestamp, r.client, r.url,
                       static_cast<std::uint16_t>(r.status)};
  }

  trace::Request to_request() const {
    trace::Request r;
    r.timestamp = timestamp;
    r.client = client;
    r.url = url;
    r.status = status;
    return r;
  }
};

class ObservationQueue final : public serve::RequestObserver {
 public:
  /// `capacity` bounds buffered observations (>= 1); pushes beyond it drop.
  explicit ObservationQueue(std::size_t capacity = 1 << 16);

  /// Non-blocking bounded push. False when the observation was dropped
  /// (ring full, queue closed, or an injected learn.queue.push fault).
  bool push(const Observation& o) noexcept;

  /// RequestObserver: the serve-side tap.
  void on_request(const trace::Request& r) noexcept override {
    (void)push(Observation::from(r));
  }

  /// Appends everything currently buffered to `out` (non-blocking).
  /// Returns the number of observations moved.
  std::size_t drain(std::vector<Observation>& out);

  /// Like drain(), but when the queue is empty waits up to `timeout` for
  /// an observation (or close()) first. Returns observations moved — 0
  /// means the wait timed out or the queue closed empty.
  std::size_t drain_wait(std::vector<Observation>& out,
                         std::chrono::milliseconds timeout);

  /// Closes the queue: subsequent pushes drop, blocked drain_wait() calls
  /// wake. Buffered observations stay drainable.
  void close();
  bool closed() const;

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const;

  /// Observations accepted / dropped since construction (exact).
  std::uint64_t pushed() const {
    return pushed_.load(std::memory_order_relaxed);
  }
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Resident bytes of the ring (storage accounting).
  std::size_t memory_bytes() const {
    return capacity_ * sizeof(Observation);
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Observation> ring_;  ///< ring buffer of capacity_ slots
  std::size_t head_ = 0;           ///< next slot to pop
  std::size_t count_ = 0;          ///< buffered observations
  bool closed_ = false;
  std::atomic<std::uint64_t> pushed_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace webppm::learn
