#include "learn/trainer.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "fault/fault.hpp"
#include "obs/trace_event.hpp"
#include "ppm/lrs_ppm.hpp"
#include "ppm/popularity_ppm.hpp"
#include "ppm/standard_ppm.hpp"
#include "ppm/top_n.hpp"
#include "serve/frozen_snapshot.hpp"

namespace webppm::learn {
namespace {

std::size_t session_bytes(const session::Session& s) {
  return sizeof(session::Session) +
         s.urls.capacity() * sizeof(UrlId) +
         s.times.capacity() * sizeof(TimeSec);
}

}  // namespace

// ---------------------------------------------------------------------------
// Shadow models: the trainer-private growing base, mirroring the sweep
// engine's incremental trainers (core/sweep.cpp) over the trainer's
// retained-session window instead of the engine's per-day caches. Keeping
// the two recipes in lockstep is what makes the convergence gate's
// byte-identity hold.

class ShadowModel {
 public:
  virtual ~ShadowModel() = default;

  /// Extends the base to cover `all_closed` (the retained window), of
  /// which [0, absorbed) is already trained in. `pop` is the current
  /// cumulative popularity table. Returns true when the base had to be
  /// rebuilt from the whole window (PB grade drift).
  virtual bool absorb(std::span<const session::Session> all_closed,
                      std::size_t absorbed,
                      const popularity::PopularityTable& pop) = 0;

  /// Rebuilds the base from `all_closed` alone — the decay path: history
  /// evicted from the retained window is forgotten.
  virtual void rebuild(std::span<const session::Session> all_closed,
                       const popularity::PopularityTable& pop) = 0;

  /// Self-contained window model for publishing: the base plus the open
  /// `tails` applied to a copy (and, for PB, the lossy pruning pass the
  /// base must never receive).
  virtual std::unique_ptr<ppm::Predictor> published_model(
      std::span<const session::Session> tails) const = 0;

  virtual std::size_t storage_bytes() const = 0;
};

namespace {

/// Standard PPM, LRS PPM and Top-N: train_more() is an exact append, so
/// absorbing closed sessions incrementally equals batch training.
template <typename Model>
class AppendShadow final : public ShadowModel {
 public:
  explicit AppendShadow(Model base) : base_(std::move(base)), empty_(base_) {}

  bool absorb(std::span<const session::Session> all_closed,
              std::size_t absorbed,
              const popularity::PopularityTable& /*pop*/) override {
    base_.train_more(all_closed.subspan(absorbed));
    return false;
  }

  void rebuild(std::span<const session::Session> all_closed,
               const popularity::PopularityTable& /*pop*/) override {
    base_ = empty_;
    base_.train_more(all_closed);
  }

  std::unique_ptr<ppm::Predictor> published_model(
      std::span<const session::Session> tails) const override {
    auto copy = std::make_unique<Model>(base_);
    copy->train_more(tails);
    return copy;
  }

  std::size_t storage_bytes() const override { return base_.storage_bytes(); }

 private:
  Model base_;
  const Model empty_;  ///< untrained copy holding the config, for rebuilds
};

/// PB-PPM: unpruned base reading grades from the trainer-owned table
/// (optimize_space is lossy, so pruning happens on a per-publish copy).
/// Appending is exact only while no URL's grade moved; on drift the base
/// is rebuilt from the retained window — core/sweep.cpp's PbTrainer logic.
class PbShadow final : public ShadowModel {
 public:
  explicit PbShadow(const ppm::PopularityPpmConfig& config)
      : config_(config) {}

  bool absorb(std::span<const session::Session> all_closed,
              std::size_t absorbed,
              const popularity::PopularityTable& pop) override {
    if (base_ != nullptr && grades_match(pop)) {
      pop_ = pop;
      base_->rebind_grades(&pop_);
      base_->train_without_optimization(all_closed.subspan(absorbed));
      return false;
    }
    const bool rebuilt = base_ != nullptr;
    rebuild(all_closed, pop);
    return rebuilt;
  }

  void rebuild(std::span<const session::Session> all_closed,
               const popularity::PopularityTable& pop) override {
    pop_ = pop;
    base_ = std::make_unique<ppm::PopularityPpm>(config_, &pop_);
    base_->train_without_optimization(all_closed);
  }

  std::unique_ptr<ppm::Predictor> published_model(
      std::span<const session::Session> tails) const override {
    auto copy = base_ != nullptr
                    ? std::make_unique<ppm::PopularityPpm>(*base_)
                    : std::make_unique<ppm::PopularityPpm>(config_, &pop_);
    copy->train_without_optimization(tails);
    copy->optimize_space();
    return copy;
  }

  std::size_t storage_bytes() const override {
    return (base_ != nullptr ? base_->storage_bytes() : 0) +
           pop_.memory_bytes();
  }

 private:
  bool grades_match(const popularity::PopularityTable& pop) const {
    const std::size_t n = std::max(pop_.url_count(), pop.url_count());
    for (UrlId u = 0; u < n; ++u) {
      if (pop_.grade(u) != pop.grade(u)) return false;
    }
    return true;
  }

  ppm::PopularityPpmConfig config_;
  popularity::PopularityTable pop_;  ///< stable address; base_ reads grades
  std::unique_ptr<ppm::PopularityPpm> base_;  ///< unpruned
};

std::unique_ptr<ShadowModel> make_shadow(
    const core::ModelSpec& spec) {
  switch (spec.kind) {
    case core::ModelKind::kStandard:
      return std::make_unique<AppendShadow<ppm::StandardPpm>>(
          ppm::StandardPpm(spec.standard));
    case core::ModelKind::kLrs:
      return std::make_unique<AppendShadow<ppm::LrsPpm>>(
          ppm::LrsPpm(spec.lrs));
    case core::ModelKind::kTopN:
      return std::make_unique<AppendShadow<ppm::TopNPredictor>>(
          ppm::TopNPredictor(spec.top_n));
    case core::ModelKind::kPopularity:
      return std::make_unique<PbShadow>(spec.pb);
  }
  return nullptr;  // unreachable
}

}  // namespace

// ---------------------------------------------------------------------------
// Trainer.

struct OnlineTrainer::Instruments {
  obs::Counter* observations;
  obs::Counter* dropped;
  obs::Counter* publishes;
  obs::Counter* publish_failures;
  obs::Counter* store_failures;
  obs::Counter* rebuilds;
  obs::Counter* drift_republishes;
  obs::Gauge* retained;
  obs::Gauge* storage_bytes;
  obs::Gauge* version;
};

OnlineTrainer::OnlineTrainer(serve::ModelServer& target,
                             OnlineTrainerConfig config)
    : target_(target),
      config_(std::move(config)),
      queue_(config_.queue_capacity),
      sessionizer_(config_.session),
      shadow_(make_shadow(config_.spec)) {
  counts_.resize(config_.url_count_hint, 0);
  version_counter_ = target_.version();
  drift_epoch_handled_ = target_.drift_alert_epoch();
  if (config_.metrics != nullptr) {
    auto& reg = *config_.metrics;
    ins_ = std::make_unique<Instruments>(Instruments{
        &reg.counter("webppm_learn_observations_total"),
        &reg.counter("webppm_learn_dropped_total"),
        &reg.counter("webppm_learn_publishes_total"),
        &reg.counter("webppm_learn_publish_failures_total"),
        &reg.counter("webppm_learn_store_failures_total"),
        &reg.counter("webppm_learn_rebuilds_total"),
        &reg.counter("webppm_learn_drift_republishes_total"),
        &reg.gauge("webppm_learn_retained_sessions"),
        &reg.gauge("webppm_learn_storage_bytes"),
        &reg.gauge("webppm_learn_published_version"),
    });
  }
}

OnlineTrainer::~OnlineTrainer() {
  detach();
  stop();
}

void OnlineTrainer::detach() {
  if (target_.observer() == &queue_) target_.attach_observer(nullptr);
}

std::size_t OnlineTrainer::step() {
  std::vector<Observation> batch;
  queue_.drain(batch);
  std::lock_guard lock(mu_);
  absorb_locked(batch);
  policy_after_batch_locked();
  return batch.size();
}

bool OnlineTrainer::publish_at(TimeSec settle_ts) {
  std::lock_guard lock(mu_);
  return publish_locked(settle_ts, PublishTrigger::kManual);
}

bool OnlineTrainer::publish_now() {
  std::lock_guard lock(mu_);
  return publish_locked(max_seen_ts_, PublishTrigger::kManual);
}

bool OnlineTrainer::start() {
  if (running_.exchange(true, std::memory_order_acq_rel)) return false;
  stopping_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { trainer_main(); });
  return true;
}

void OnlineTrainer::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stopping_.store(true, std::memory_order_release);
  queue_.close();  // wakes the thread; buffered observations stay drainable
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_release);
}

void OnlineTrainer::trainer_main() {
  std::vector<Observation> batch;
  const auto poll = std::chrono::milliseconds(
      std::max<std::uint64_t>(1, config_.poll_interval_ms));
  for (;;) {
    batch.clear();
    queue_.drain_wait(batch, poll);
    {
      std::lock_guard lock(mu_);
      absorb_locked(batch);
      policy_after_batch_locked();
    }
    // Exit only once the closed queue has been drained *dry*: stop()
    // closes the queue (guaranteeing no further pushes), but the close can
    // land while this thread is mid-absorb with another full batch already
    // buffered behind it — a stopping-flag check here would strand that
    // batch. An empty drain from a closed, empty queue cannot race a push.
    if (batch.empty() && queue_.closed() && queue_.size() == 0) break;
  }
}

void OnlineTrainer::absorb_locked(std::vector<Observation>& batch) {
  if (ins_ != nullptr) {
    const std::uint64_t d = queue_.dropped();
    if (d != dropped_reported_) {
      ins_->dropped->add(d - dropped_reported_);
      dropped_reported_ = d;
    }
  }
  if (batch.empty()) return;

  // Concurrent query threads interleave their pushes, so a drained batch
  // can regress in time even though each thread pushed in order. The
  // stable sort restores a global timestamp order without reordering
  // equal-timestamp arrivals; anything still below the high-water mark
  // (straddling two drains) is clamped to it — per-client click order is
  // preserved either way, which is all sessionization needs.
  if (!std::is_sorted(batch.begin(), batch.end(),
                      [](const Observation& a, const Observation& b) {
                        return a.timestamp < b.timestamp;
                      })) {
    std::stable_sort(batch.begin(), batch.end(),
                     [](const Observation& a, const Observation& b) {
                       return a.timestamp < b.timestamp;
                     });
  }
  for (auto& o : batch) {
    if (o.timestamp < max_seen_ts_) o.timestamp = max_seen_ts_;
    max_seen_ts_ = o.timestamp;
  }

  if (!seen_any_) {
    seen_any_ = true;
    next_day_boundary_ =
        (batch.front().timestamp / kSecondsPerDay + 1) * kSecondsPerDay;
    last_publish_ts_ = batch.front().timestamp;
  }

  // Split the batch at publish boundaries *before* feeding: the offline
  // engine settles each day before seeing the next day's requests, and
  // feeding a post-boundary click first could close a session out of
  // order. The split keeps the sessionizer's operation history — and so
  // its closed-session order — identical to the oracle's.
  std::span<const Observation> rest(batch);
  while (config_.policy.day_boundaries && !rest.empty() &&
         rest.back().timestamp >= next_day_boundary_) {
    const auto split = std::lower_bound(
        rest.begin(), rest.end(), next_day_boundary_,
        [](const Observation& o, TimeSec b) { return o.timestamp < b; });
    const auto head_len = static_cast<std::size_t>(split - rest.begin());
    feed_locked(rest.subspan(0, head_len));
    publish_locked(next_day_boundary_, PublishTrigger::kDayBoundary);
    next_day_boundary_ += kSecondsPerDay;
    rest = rest.subspan(head_len);
  }
  feed_locked(rest);
}

void OnlineTrainer::feed_locked(std::span<const Observation> batch) {
  if (batch.empty()) return;
  req_buf_.clear();
  req_buf_.reserve(batch.size());
  for (const auto& o : batch) {
    // Popularity counts every request, errors included — the offline
    // table does (PopularityTable::build has no status filter), and the
    // paper's grades are access counts, not success counts.
    if (o.url >= counts_.size()) counts_.resize(o.url + 1, 0);
    ++counts_[o.url];
    req_buf_.push_back(o.to_request());
  }
  sessionizer_.feed(req_buf_);
  since_publish_ += batch.size();
  observations_.fetch_add(batch.size(), std::memory_order_relaxed);
  if (ins_ != nullptr) ins_->observations->add(batch.size());
}

void OnlineTrainer::policy_after_batch_locked() {
  if (!seen_any_) return;
  const auto& p = config_.policy;
  if (p.interval_sec != 0 && since_publish_ != 0 &&
      max_seen_ts_ >= last_publish_ts_ + p.interval_sec) {
    publish_locked(max_seen_ts_, PublishTrigger::kInterval);
  }
  if (p.observation_threshold != 0 &&
      since_publish_ >= p.observation_threshold) {
    publish_locked(max_seen_ts_, PublishTrigger::kThreshold);
  }
  if (p.on_drift_alert) {
    const std::uint64_t epoch = target_.drift_alert_epoch();
    if (epoch > drift_epoch_handled_) {
      drift_epoch_handled_ = epoch;
      if (publish_locked(max_seen_ts_, PublishTrigger::kDriftAlert)) {
        drift_republishes_.fetch_add(1, std::memory_order_relaxed);
        if (ins_ != nullptr) ins_->drift_republishes->add();
      }
    }
  }
}

bool OnlineTrainer::publish_locked(TimeSec settle_ts, PublishTrigger why) {
  // The fault fires before *anything* is absorbed: sessionizer, retained
  // window, shadow base and the serving snapshot are exactly as they were,
  // so the next publish (covering a superset of this window) heals the
  // gap — a failed publish can never corrupt serving.
  if (WEBPPM_FAULT_INJECT("learn.publish")) {
    publish_failures_.fetch_add(1, std::memory_order_relaxed);
    if (ins_ != nullptr) ins_->publish_failures->add();
    obs::log_event(obs::Severity::kWarn, "learn.publish_failed",
                   "injected fault aborted publish at ts " +
                       std::to_string(settle_ts));
    return false;
  }

  sessionizer_.settle_before(settle_ts);
  auto fresh = sessionizer_.take_closed();
  for (auto& s : fresh) {
    retained_bytes_ += session_bytes(s);
    retained_.push_back(std::move(s));
  }

  auto pop = popularity::PopularityTable::from_counts(counts_);
  if (shadow_->absorb(retained_, absorbed_, pop)) {
    rebuilds_.fetch_add(1, std::memory_order_relaxed);
    if (ins_ != nullptr) ins_->rebuilds->add();
  }
  absorbed_ = retained_.size();

  if (config_.max_retained_sessions != 0 &&
      retained_.size() > config_.max_retained_sessions) {
    const std::size_t excess =
        retained_.size() - config_.max_retained_sessions;
    for (std::size_t i = 0; i < excess; ++i) {
      retained_bytes_ -= session_bytes(retained_[i]);
    }
    retained_.erase(retained_.begin(),
                    retained_.begin() + static_cast<std::ptrdiff_t>(excess));
    absorbed_ -= excess;
  }

  if (config_.policy.rebuild_every_publishes != 0) {
    if (++publishes_since_rebuild_ >= config_.policy.rebuild_every_publishes) {
      publishes_since_rebuild_ = 0;
      shadow_->rebuild(retained_, pop);
      absorbed_ = retained_.size();
      rebuilds_.fetch_add(1, std::memory_order_relaxed);
      if (ins_ != nullptr) ins_->rebuilds->add();
    }
  }

  const auto tails = sessionizer_.open_snapshot();
  auto model = shadow_->published_model(tails);

  version_counter_ = std::max(version_counter_, target_.version()) + 1;
  auto snap = serve::make_snapshot(std::move(model), std::move(pop),
                                   version_counter_, config_.fallback_top_n);
  if (config_.freeze_published &&
      config_.spec.kind != core::ModelKind::kTopN) {
    snap = serve::freeze_snapshot(*snap, config_.fallback_top_n);
  }

  if (config_.store != nullptr) {
    const auto pr = config_.store->publish(*snap);
    if (!pr.ok) {
      // Durability lost, freshness kept: the in-memory publish proceeds
      // and the next successful store publish persists a newer window.
      store_failures_.fetch_add(1, std::memory_order_relaxed);
      if (ins_ != nullptr) ins_->store_failures->add();
      obs::log_event(obs::Severity::kWarn, "learn.store_failed", pr.error);
    }
  }
  target_.publish(snap);

  publishes_.fetch_add(1, std::memory_order_relaxed);
  published_version_.store(version_counter_, std::memory_order_relaxed);
  last_trigger_.store(why, std::memory_order_relaxed);
  last_publish_ts_ = settle_ts;
  since_publish_ = 0;
  if (ins_ != nullptr) {
    ins_->publishes->add();
    ins_->retained->set(static_cast<std::int64_t>(retained_.size()));
    ins_->storage_bytes->set(static_cast<std::int64_t>(storage_bytes_locked()));
    ins_->version->set(static_cast<std::int64_t>(version_counter_));
  }
  return true;
}

std::size_t OnlineTrainer::retained_sessions() const {
  std::lock_guard lock(mu_);
  return retained_.size();
}

std::size_t OnlineTrainer::open_sessions() const {
  std::lock_guard lock(mu_);
  return sessionizer_.open_count();
}

std::size_t OnlineTrainer::storage_bytes() const {
  std::lock_guard lock(mu_);
  return storage_bytes_locked();
}

std::size_t OnlineTrainer::storage_bytes_locked() const {
  return shadow_->storage_bytes() + retained_bytes_ +
         counts_.capacity() * sizeof(std::uint32_t) + queue_.memory_bytes();
}

}  // namespace webppm::learn
