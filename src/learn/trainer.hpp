// learn::OnlineTrainer — the online-training pipeline: learn from the
// traffic being served and continuously republish the model
// (DESIGN.md §15).
//
// The deployment loop the paper leaves offline — collect a day's log,
// re-run training, hand the server a new model — becomes a pipeline inside
// the serving process:
//
//   ModelServer query/observe path
//     └─ RequestObserver tap (one atomic load when detached)
//          └─ ObservationQueue (bounded, drop-on-full — never blocks serving)
//               └─ trainer: sessionize → extend shadow model → publish
//                    └─ ModelServer::publish (RCU swap; queries never pause)
//
// The *shadow model* is the trainer's private growing base — the serving
// snapshot is never mutated. It is extended with exactly the machinery the
// offline SweepEngine uses: closed sessions append via train_more (exact
// for Standard/LRS/Top-N), and PB-PPM keeps an unpruned base reading the
// current popularity grades, rebuilt when grades drift and pruned on a
// copy per publish. Publishing settles the sessionizer, applies the open
// tails to a copy, wraps it with the cumulative popularity table via
// make_snapshot, optionally freezes it, optionally persists it through a
// SnapshotStore, and RCU-publishes into the target server.
//
// Determinism contract (the convergence gate in bench/online_training):
// fed the same request stream the offline oracle trained on — errors
// included, in timestamp order — and publishing only at day boundaries,
// the trainer's published model answers *byte-identically* to
// SweepEngine::train(spec, k) at every boundary k. This holds because the
// trainer performs the identical operation history on an identical
// IncrementalSessionizer (feeds split at each boundary before settling,
// so closed-session order matches the oracle's feed-then-settle order)
// and the identical train calls in the identical order. Mid-day publishes
// (drift/interval/threshold triggers) insert extra settle points, which
// may reorder session closing — deliberate freshness at the cost of
// replay-exactness, which is why the gate pins day_boundaries only.
//
// Old-window decay: retention is bounded by max_retained_sessions and
// policy.rebuild_every_publishes periodically rebuilds the shadow from the
// retained window only, forgetting evicted history. Popularity counts stay
// cumulative (they are cheap and error-inclusive; a rotating head
// re-grades itself by accumulation).
//
// Fault site (chaos suite): learn.publish — a firing rule aborts the
// publish *before* any state is absorbed: the sessionizer, retained
// window, shadow base and serving snapshot are all untouched, and the next
// publish covers the skipped one. A trainer crash or failed publish can
// therefore never corrupt serving — the server just keeps answering from
// the last good snapshot.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "core/experiment.hpp"
#include "learn/observation.hpp"
#include "obs/metrics.hpp"
#include "serve/model_server.hpp"
#include "serve/snapshot_store.hpp"
#include "session/session.hpp"
#include "util/types.hpp"

namespace webppm::learn {

/// When the trainer freezes-and-publishes its shadow. Time here is *trace
/// time* (observation timestamps), not wall clock: the trainer serves
/// replayed history and live traffic with the same code.
struct PublishPolicy {
  /// Publish whenever the observed stream crosses a UTC day boundary —
  /// the offline protocol's cadence, and the only trigger active during
  /// the byte-identity convergence gate.
  bool day_boundaries = true;
  /// Publish every `interval_sec` of observed time (0 = off).
  TimeSec interval_sec = 0;
  /// Publish after this many observations since the last publish (0 = off).
  std::uint64_t observation_threshold = 0;
  /// Publish immediately when the target server's DriftWatch raises a new
  /// alert (edge-triggered via ModelServer::drift_alert_epoch) — the
  /// flash-crowd recovery path bench/online_training demonstrates.
  bool on_drift_alert = false;
  /// Every Nth publish, rebuild the shadow from the *retained* session
  /// window only (0 = never). With bounded retention this is the decay
  /// mechanism: evicted history is forgotten by the rebuilt base.
  std::uint32_t rebuild_every_publishes = 0;
};

/// Why the most recent publish happened.
enum class PublishTrigger : std::uint8_t {
  kNone,
  kManual,
  kDayBoundary,
  kInterval,
  kThreshold,
  kDriftAlert,
};

/// Internal: the trainer-private growing base (one concrete shape per
/// ModelKind, defined in trainer.cpp).
class ShadowModel;

struct OnlineTrainerConfig {
  /// Model family + parameters the shadow trains; identical role to the
  /// offline ModelSpec.
  core::ModelSpec spec = core::ModelSpec::pb_model();
  /// Session rules — must mirror the target server's (and offline
  /// training's) so shadow sessions match.
  session::SessionizerOptions session;
  PublishPolicy policy;
  /// Bounded observation ring between the serve tap and the trainer.
  std::size_t queue_capacity = 1 << 16;
  /// Closed sessions kept for shadow rebuilds (0 = unbounded — required
  /// for the convergence gate; bound it in production and let
  /// rebuild_every_publishes decay old windows). Counted in
  /// storage_bytes().
  std::size_t max_retained_sessions = 0;
  /// Pre-size the popularity count vector (0 = grow on demand). Matching
  /// the trace's URL-space size makes the published popularity table
  /// equal the offline oracle's field-for-field, not just grade-for-grade.
  std::size_t url_count_hint = 0;
  /// Top-N size of published snapshots' degraded-service fallback.
  std::size_t fallback_top_n = 10;
  /// Freeze the published snapshot (serve::freeze_snapshot) so the target
  /// serves the compact SoA layout. Skipped for Top-N specs, whose only
  /// frozen form is popularity-only (it would degrade serving).
  bool freeze_published = false;
  /// Non-null: every publish is also durably written here (generation
  /// file + manifest) before the in-memory publish. A store failure is
  /// counted and logged but does *not* block the in-memory publish —
  /// serving freshness beats durability for an online model.
  serve::SnapshotStore* store = nullptr;
  /// Trainer-thread wakeup cadence when the queue is idle.
  std::uint64_t poll_interval_ms = 50;
  /// Non-null attaches webppm_learn_* metrics.
  obs::MetricsRegistry* metrics = nullptr;
};

class OnlineTrainer {
 public:
  /// `target` (and `config.store`, when set) must outlive the trainer.
  /// Nothing observes until attach() and nothing trains until step() or
  /// start().
  explicit OnlineTrainer(serve::ModelServer& target,
                         OnlineTrainerConfig config = {});
  ~OnlineTrainer();

  OnlineTrainer(const OnlineTrainer&) = delete;
  OnlineTrainer& operator=(const OnlineTrainer&) = delete;

  /// The serve-side tap; attach() is sugar for
  /// target.attach_observer(&queue()).
  ObservationQueue& queue() { return queue_; }
  const ObservationQueue& queue() const { return queue_; }
  void attach() { target_.attach_observer(&queue_); }
  /// Detaches only if this trainer's queue is the attached observer.
  void detach();

  // --- Manual stepping (deterministic single-threaded mode; the
  // convergence gate and most tests drive the trainer this way). Safe to
  // interleave with a running trainer thread, though pointless.

  /// Drains the queue, absorbs the batch (sessionize + count + shadow
  /// append), and runs the publish policy. Returns observations absorbed.
  std::size_t step();

  /// Publishes at `settle_ts`: sessions idle since before it close into
  /// the shadow, sessions still open apply to a copy as tails. False when
  /// an injected learn.publish fault aborted (state unchanged). For
  /// replay-exactness settle only at day boundaries (header comment).
  bool publish_at(TimeSec settle_ts);

  /// publish_at(latest observed timestamp) — "publish what you have now".
  bool publish_now();

  // --- Background mode.

  /// Spawns the trainer thread: drain → absorb → policy, waking on queue
  /// activity or every poll_interval_ms. False if already running.
  bool start();
  /// Closes the queue (subsequent taps drop), absorbs what was buffered,
  /// and joins. Idempotent; the destructor calls it. Detach the observer
  /// first if the target keeps serving.
  void stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  // --- Introspection (exact; safe from any thread).

  std::uint64_t observations() const { return observations_.load(std::memory_order_relaxed); }
  std::uint64_t dropped() const { return queue_.dropped(); }
  std::uint64_t publishes() const { return publishes_.load(std::memory_order_relaxed); }
  std::uint64_t publish_failures() const { return publish_failures_.load(std::memory_order_relaxed); }
  std::uint64_t store_failures() const { return store_failures_.load(std::memory_order_relaxed); }
  std::uint64_t rebuilds() const { return rebuilds_.load(std::memory_order_relaxed); }
  std::uint64_t drift_republishes() const { return drift_republishes_.load(std::memory_order_relaxed); }
  std::uint64_t last_published_version() const { return published_version_.load(std::memory_order_relaxed); }
  PublishTrigger last_trigger() const { return last_trigger_.load(std::memory_order_relaxed); }

  /// Closed sessions currently retained for rebuilds.
  std::size_t retained_sessions() const;
  /// Sessions still open inside the trainer's sessionizer.
  std::size_t open_sessions() const;
  /// Trainer-side resident bytes: shadow base + retained sessions +
  /// popularity counts + the observation ring.
  std::size_t storage_bytes() const;

  const OnlineTrainerConfig& config() const { return config_; }

 private:
  /// Feeds one drained batch: sorts/clamps timestamps, splits it at day
  /// boundaries (publishing at each when the policy says so — the split
  /// keeps sessionizer operation history identical to the offline
  /// engine's), counts popularity, and feeds the sessionizer.
  void absorb_locked(std::vector<Observation>& batch);
  /// Feeds a timestamp-ordered sub-batch that crosses no publish boundary.
  void feed_locked(std::span<const Observation> batch);
  void policy_after_batch_locked();
  bool publish_locked(TimeSec settle_ts, PublishTrigger why);
  std::size_t storage_bytes_locked() const;
  void trainer_main();

  serve::ModelServer& target_;
  OnlineTrainerConfig config_;
  ObservationQueue queue_;

  mutable std::mutex mu_;  ///< trainer state below
  session::IncrementalSessionizer sessionizer_;
  std::unique_ptr<ShadowModel> shadow_;
  std::vector<session::Session> retained_;
  std::size_t absorbed_ = 0;        ///< retained_[0..absorbed_) is in the base
  std::size_t retained_bytes_ = 0;  ///< resident bytes of retained_
  std::vector<std::uint32_t> counts_;  ///< cumulative per-URL (errors incl.)
  TimeSec max_seen_ts_ = 0;
  bool seen_any_ = false;
  TimeSec next_day_boundary_ = 0;
  TimeSec last_publish_ts_ = 0;
  std::uint64_t since_publish_ = 0;  ///< observations since last publish
  std::uint64_t drift_epoch_handled_ = 0;
  std::uint32_t publishes_since_rebuild_ = 0;
  std::uint64_t version_counter_ = 0;
  std::vector<trace::Request> req_buf_;  ///< feed_locked scratch

  std::atomic<std::uint64_t> observations_{0};
  std::atomic<std::uint64_t> publishes_{0};
  std::atomic<std::uint64_t> publish_failures_{0};
  std::atomic<std::uint64_t> store_failures_{0};
  std::atomic<std::uint64_t> rebuilds_{0};
  std::atomic<std::uint64_t> drift_republishes_{0};
  std::atomic<std::uint64_t> published_version_{0};
  std::atomic<PublishTrigger> last_trigger_{PublishTrigger::kNone};

  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  struct Instruments;
  std::unique_ptr<Instruments> ins_;
  std::uint64_t dropped_reported_ = 0;  ///< under mu_ (counter delta)
};

}  // namespace webppm::learn
