#include "frozen/frozen.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

namespace webppm::frozen {
namespace {

bool fail(std::string* error, std::string msg) {
  if (error != nullptr) *error = std::move(msg);
  return false;
}

template <typename T>
std::span<const T> section_span(const char* base, std::uint64_t offset,
                                std::uint64_t entries) {
  return {reinterpret_cast<const T*>(base + offset),
          static_cast<std::size_t>(entries)};
}

/// Packed 2-bit grade write.
void set_grade(std::uint8_t* grades, UrlId u, int grade) {
  grades[u >> 2] |= static_cast<std::uint8_t>((grade & 3) << ((u & 3u) * 2));
}

}  // namespace

std::string build_payload(const BuildSpec& spec) {
  assert(spec.popularity != nullptr);
  assert(spec.kind == kKindDegraded || spec.tree != nullptr);

  FrozenHeader h{};
  std::memcpy(h.magic, kMagic, sizeof h.magic);
  h.header_bytes = sizeof(FrozenHeader);
  h.model_kind = spec.kind;
  h.url_count = static_cast<std::uint32_t>(spec.popularity->url_count());

  // --- Node order: breadth-first level order, roots (then children) sorted
  // by URL. Frozen ids are assigned in visit order, so children of node i
  // are the contiguous, url-sorted range [child_begin[i], child_begin[i+1])
  // and node depth is monotone in node id (depth stays implicit).
  std::vector<std::pair<UrlId, ppm::NodeId>> order;
  std::vector<std::uint32_t> child_begin;
  std::unordered_map<ppm::NodeId, std::uint32_t> old2new;
  if (spec.kind != kKindDegraded) {
    const ppm::PredictionTree& tree = *spec.tree;
    const std::size_t n = tree.node_count();
    order.reserve(n);
    child_begin.assign(n + 1, 0);
    old2new.reserve(n);
    for (const auto& [url, id] : tree.roots()) order.emplace_back(url, id);
    std::sort(order.begin(), order.end());
    for (std::size_t i = 0; i < order.size(); ++i) {
      old2new.emplace(order[i].second, static_cast<std::uint32_t>(i));
    }
    std::vector<std::pair<UrlId, ppm::NodeId>> kids;
    for (std::size_t head = 0; head < order.size(); ++head) {
      child_begin[head] = static_cast<std::uint32_t>(order.size());
      kids.clear();
      tree.node(order[head].second)
          .children.for_each(
              [&](UrlId url, ppm::NodeId c) { kids.emplace_back(url, c); });
      std::sort(kids.begin(), kids.end());
      for (const auto& [url, c] : kids) {
        old2new.emplace(c, static_cast<std::uint32_t>(order.size()));
        order.emplace_back(url, c);
      }
    }
    assert(order.size() == n && "arena tree has unreachable live nodes");
    child_begin[n] = static_cast<std::uint32_t>(n);
    h.node_count = static_cast<std::uint32_t>(n);
    h.root_count = static_cast<std::uint32_t>(tree.root_count());
  }

  // --- PB special links: rows sorted by frozen root id; each row's targets
  // keep the arena's pre-ranked order (rank_links()), so "take the first
  // link_top_k" reads the same targets the arena predict() reads. The
  // counts that induced the ranking are not re-stored as ordering keys —
  // the order *is* the rank.
  std::vector<std::pair<std::uint32_t, const std::vector<ppm::NodeId>*>> rows;
  std::size_t target_total = 0;
  if (spec.kind == kKindPopularity && spec.pb.special_links &&
      spec.links != nullptr) {
    rows.reserve(spec.links->size());
    for (const auto& [root, targets] : *spec.links) {
      if (targets.empty()) continue;
      rows.emplace_back(old2new.at(root), &targets);
      target_total += targets.size();
    }
    std::sort(rows.begin(), rows.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    h.link_root_count = static_cast<std::uint32_t>(rows.size());
    h.link_target_count = static_cast<std::uint32_t>(target_total);
  }

  // --- Per-kind configuration.
  switch (spec.kind) {
    case kKindStandard:
      h.prob_threshold = spec.standard.prob_threshold;
      h.max_height = spec.standard.max_height;
      h.max_context = spec.standard.max_context;
      break;
    case kKindLrs:
      h.prob_threshold = spec.lrs.prob_threshold;
      h.max_height = spec.lrs.max_height;
      h.min_support = spec.lrs.min_support;
      h.max_context = spec.lrs.max_context;
      break;
    case kKindPopularity:
      h.prob_threshold = spec.pb.prob_threshold;
      h.link_prob_threshold = spec.pb.link_prob_threshold;
      h.min_relative_probability = spec.pb.min_relative_probability;
      h.max_context = spec.pb.max_context;
      h.link_top_k = spec.pb.link_top_k;
      h.min_absolute_count = spec.pb.min_absolute_count;
      for (std::size_t g = 0; g < spec.pb.height_by_grade.size(); ++g) {
        h.height_by_grade[g] = spec.pb.height_by_grade[g];
      }
      h.special_links = spec.pb.special_links ? 1 : 0;
      break;
    case kKindDegraded:
      break;
  }

  const SectionLayout lay = compute_layout(h);
  h.payload_bytes = lay.total_bytes;

  std::string payload(static_cast<std::size_t>(lay.total_bytes), '\0');
  char* base = payload.data();
  std::memcpy(base, &h, sizeof h);

  const auto put_u32 = [&](std::uint64_t offset, std::uint64_t index,
                           std::uint32_t v) {
    std::memcpy(base + offset + index * 4, &v, 4);
  };

  if (spec.kind != kKindDegraded) {
    const ppm::PredictionTree& tree = *spec.tree;
    for (std::size_t i = 0; i < order.size(); ++i) {
      put_u32(lay.urls, i, order[i].first);
      put_u32(lay.counts, i, tree.node(order[i].second).count);
    }
    for (std::size_t i = 0; i < child_begin.size(); ++i) {
      put_u32(lay.child_begin, i, child_begin[i]);
    }
    std::uint32_t t = 0;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      put_u32(lay.link_roots, i, rows[i].first);
      put_u32(lay.link_begin, i, t);
      for (const ppm::NodeId target : *rows[i].second) {
        put_u32(lay.link_targets, t++, old2new.at(target));
      }
    }
    if (!rows.empty()) put_u32(lay.link_begin, rows.size(), t);
  }

  for (UrlId u = 0; u < h.url_count; ++u) {
    put_u32(lay.pop_counts, u, spec.popularity->accesses(u));
    set_grade(reinterpret_cast<std::uint8_t*>(base + lay.pop_grades), u,
              spec.popularity->grade(u));
  }
  return payload;
}

bool decode_payload(std::string_view payload, FrozenView* view,
                    std::string* error) {
  if (payload.size() < sizeof(FrozenHeader)) {
    return fail(error, "frozen: payload smaller than header (" +
                           std::to_string(payload.size()) + " bytes)");
  }
  if (reinterpret_cast<std::uintptr_t>(payload.data()) % 8 != 0) {
    return fail(error, "frozen: mapping base not 8-byte aligned");
  }
  FrozenHeader h;
  std::memcpy(&h, payload.data(), sizeof h);
  if (std::memcmp(h.magic, kMagic, sizeof kMagic) != 0) {
    return fail(error, "frozen: bad magic");
  }
  if (h.header_bytes != sizeof(FrozenHeader)) {
    return fail(error, "frozen: header size " +
                           std::to_string(h.header_bytes) + " != " +
                           std::to_string(sizeof(FrozenHeader)));
  }
  if (h.model_kind > kMaxModelKind) {
    return fail(error,
                "frozen: unknown model kind " + std::to_string(h.model_kind));
  }
  if (h.reserved0 != 0 || h.pad[0] != 0 || h.pad[1] != 0 || h.pad[2] != 0 ||
      std::any_of(std::begin(h.reserved1), std::end(h.reserved1),
                  [](std::uint8_t b) { return b != 0; })) {
    return fail(error, "frozen: reserved header bytes not zero");
  }
  if (h.special_links > 1) {
    return fail(error, "frozen: special_links flag not boolean");
  }
  for (const double v : {h.prob_threshold, h.link_prob_threshold,
                         h.min_relative_probability}) {
    if (!std::isfinite(v) || v < 0.0) {
      return fail(error, "frozen: config threshold not finite and >= 0");
    }
  }

  // The single bounds check: recomputed section layout must match the
  // mapping byte-for-byte. After this every section span is in bounds, and
  // no claimed count ever sized an allocation.
  const SectionLayout lay = compute_layout(h);
  if (h.payload_bytes != payload.size()) {
    return fail(error, "frozen: header claims " +
                           std::to_string(h.payload_bytes) +
                           " payload bytes, mapping has " +
                           std::to_string(payload.size()));
  }
  if (lay.total_bytes != payload.size()) {
    return fail(error, "frozen: sections need " +
                           std::to_string(lay.total_bytes) +
                           " bytes, mapping has " +
                           std::to_string(payload.size()));
  }

  FrozenView v;
  v.header = h;
  const char* base = payload.data();
  v.urls = section_span<std::uint32_t>(base, lay.urls, h.node_count);
  v.counts = section_span<std::uint32_t>(base, lay.counts, h.node_count);
  v.child_begin = section_span<std::uint32_t>(base, lay.child_begin,
                                              lay.child_begin_entries);
  v.link_roots =
      section_span<std::uint32_t>(base, lay.link_roots, h.link_root_count);
  v.link_begin = section_span<std::uint32_t>(base, lay.link_begin,
                                             lay.link_begin_entries);
  v.link_targets = section_span<std::uint32_t>(base, lay.link_targets,
                                               h.link_target_count);
  v.pop_counts =
      section_span<std::uint32_t>(base, lay.pop_counts, h.url_count);
  v.pop_grades = section_span<std::uint8_t>(
      base, lay.pop_grades, (static_cast<std::uint64_t>(h.url_count) + 3) / 4);

  const std::uint32_t n = h.node_count;
  const std::uint32_t r = h.root_count;
  if (h.model_kind == kKindDegraded) {
    if (n != 0 || r != 0 || h.link_root_count != 0 ||
        h.link_target_count != 0) {
      return fail(error, "frozen: degraded payload carries tree sections");
    }
  } else {
    if (r > n) return fail(error, "frozen: root count exceeds node count");
    if (n > 0 && r == 0) {
      return fail(error, "frozen: nodes present but no roots");
    }
    for (std::uint32_t i = 1; i < r; ++i) {
      if (v.urls[i - 1] >= v.urls[i]) {
        return fail(error, "frozen: roots not strictly url-sorted at index " +
                               std::to_string(i));
      }
    }
    if (v.child_begin[0] != r) {
      return fail(error, "frozen: child_begin[0] != root count");
    }
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::uint32_t b = v.child_begin[i];
      const std::uint32_t e = v.child_begin[i + 1];
      if (e < b || e > n) {
        return fail(error, "frozen: child range of node " + std::to_string(i) +
                               " malformed");
      }
      if (b == e) {
        ++v.leaf_count;
        continue;
      }
      if (b <= i) {
        return fail(error, "frozen: children of node " + std::to_string(i) +
                               " do not follow it");
      }
      for (std::uint32_t c = b + 1; c < e; ++c) {
        if (v.urls[c - 1] >= v.urls[c]) {
          return fail(error, "frozen: children of node " + std::to_string(i) +
                                 " not strictly url-sorted");
        }
      }
    }
    if (v.child_begin[n] != n) {
      return fail(error, "frozen: child ranges do not cover all nodes");
    }
    // Level order: the first depth-3 node is where the first depth-2
    // node's children start (child ranges tile [r, n) in parent order).
    v.depth3_begin = v.child_begin[r];
  }

  if (h.model_kind != kKindPopularity &&
      (h.link_root_count != 0 || h.link_target_count != 0)) {
    return fail(error, "frozen: special links on a non-PB model");
  }
  if (h.link_root_count > 0) {
    if (h.special_links == 0) {
      return fail(error, "frozen: links present but special_links disabled");
    }
    for (std::uint32_t i = 0; i < h.link_root_count; ++i) {
      if (v.link_roots[i] >= r) {
        return fail(error, "frozen: link root out of root range");
      }
      if (i > 0 && v.link_roots[i - 1] >= v.link_roots[i]) {
        return fail(error, "frozen: link roots not strictly sorted");
      }
    }
    if (v.link_begin[0] != 0 ||
        v.link_begin[h.link_root_count] != h.link_target_count) {
      return fail(error, "frozen: link ranges do not cover all targets");
    }
    for (std::uint32_t i = 0; i < h.link_root_count; ++i) {
      const std::uint32_t b = v.link_begin[i];
      const std::uint32_t e = v.link_begin[i + 1];
      if (e < b || e > h.link_target_count) {
        return fail(error, "frozen: link range of entry " + std::to_string(i) +
                               " malformed");
      }
      if (b == e) {
        return fail(error, "frozen: link root with no targets");
      }
      for (std::uint32_t t = b; t < e; ++t) {
        // Rule 3 targets are duplicated popular nodes "not immediately
        // following the heading URL" — depth >= 3, same rule the text
        // serializer enforces.
        if (v.link_targets[t] >= n || v.link_targets[t] < v.depth3_begin) {
          return fail(error, "frozen: link target " +
                                 std::to_string(v.link_targets[t]) +
                                 " not a depth>=3 node");
        }
      }
    }
  } else if (lay.link_begin_entries != 0) {
    return fail(error, "frozen: dangling link section");
  }

  // Packed grades must agree with the counts they were derived from
  // (grade_of over relative popularity), and padding bits must be zero so
  // every byte of the section is structurally covered.
  std::uint32_t max_count = 0;
  for (const std::uint32_t c : v.pop_counts) max_count = std::max(max_count, c);
  for (UrlId u = 0; u < h.url_count; ++u) {
    const double rel =
        max_count == 0 ? 0.0
                       : static_cast<double>(v.pop_counts[u]) /
                             static_cast<double>(max_count);
    if (v.grade(u) != popularity::grade_of(rel)) {
      return fail(error, "frozen: grade of url " + std::to_string(u) +
                             " disagrees with its count");
    }
  }
  if (h.url_count % 4 != 0 && !v.pop_grades.empty()) {
    const std::uint8_t last = v.pop_grades[v.pop_grades.size() - 1];
    if ((last >> ((h.url_count % 4) * 2)) != 0) {
      return fail(error, "frozen: grade padding bits not zero");
    }
  }

  if (view != nullptr) *view = v;
  return true;
}

std::unique_ptr<FrozenModel> FrozenModel::open(
    std::shared_ptr<const void> backing, std::string_view payload,
    std::string* error) {
  FrozenView view;
  if (!decode_payload(payload, &view, error)) return nullptr;
  if (view.header.model_kind == kKindDegraded) {
    fail(error, "frozen: degraded payload has no model");
    return nullptr;
  }
  auto model = std::unique_ptr<FrozenModel>(new FrozenModel());
  model->backing_ = std::move(backing);
  model->payload_ = payload;
  model->view_ = view;
  switch (view.header.model_kind) {
    case kKindStandard:
      model->name_ = view.header.max_height == 0
                         ? "frozen-standard-ppm"
                         : "frozen-" + std::to_string(view.header.max_height) +
                               "-ppm";
      break;
    case kKindLrs:
      model->name_ = "frozen-lrs-ppm";
      break;
    default:
      model->name_ = "frozen-pb-ppm";
      break;
  }
  // Roots are the hottest lookup (every context step starts there), so
  // they get a direct url->node table; roots are sorted, so the largest
  // root url is the last one.
  if (view.header.root_count > 0) {
    const UrlId max_root_url = view.urls[view.header.root_count - 1];
    model->root_index_.assign(static_cast<std::size_t>(max_root_url) + 1,
                              kNoNode);
    for (std::uint32_t r = 0; r < view.header.root_count; ++r) {
      model->root_index_[view.urls[r]] = r;
    }
  }
  return model;
}

std::uint32_t FrozenModel::find_in(std::uint32_t lo, std::uint32_t hi,
                                   UrlId url) const {
  // Child ranges are usually a handful of entries, where a forward scan of
  // the contiguous sorted slice beats any search; larger fan-outs fall
  // through to a branchless lower-bound (conditional pointer advance the
  // compiler turns into cmov, no unpredictable branches).
  const std::uint32_t* data = view_.urls.data();
  const std::uint32_t* base = data + lo;
  std::size_t len = hi - lo;
  if (len <= 16) {
    for (std::size_t i = 0; i < len; ++i) {
      if (base[i] >= url) {
        return base[i] == url ? static_cast<std::uint32_t>(lo + i) : kNoNode;
      }
    }
    return kNoNode;
  }
  while (len > 1) {
    const std::size_t half = len / 2;
    base += (base[half - 1] < url) ? half : 0;
    len -= half;
  }
  return (len == 1 && *base == url)
             ? static_cast<std::uint32_t>(base - data)
             : kNoNode;
}

std::uint32_t FrozenModel::find_path(std::span<const UrlId> path) const {
  if (path.empty()) return kNoNode;
  std::uint32_t cur = find_root(path[0]);
  for (std::size_t i = 1; cur != kNoNode && i < path.size(); ++i) {
    cur = find_in(view_.child_begin[cur], view_.child_begin[cur + 1], path[i]);
  }
  return cur;
}

FrozenModel::Match FrozenModel::longest_match(std::span<const UrlId> context,
                                              std::size_t max_context,
                                              ppm::MatchPolicy policy) const {
  const std::size_t longest = std::min(context.size(), max_context);
  for (std::size_t k = longest; k >= 1; --k) {
    const auto suffix = context.subspan(context.size() - k);
    const std::uint32_t n = find_path(suffix);
    if (n == kNoNode) continue;
    if (!is_leaf(n)) return {n, k};
    if (policy == ppm::MatchPolicy::kStrict) return {};
  }
  return {};
}

void FrozenModel::emit_children(std::uint32_t node, double threshold,
                                std::vector<ppm::Prediction>& out,
                                ppm::UsageScratch* usage) const {
  const auto parent_count = static_cast<double>(view_.counts[node]);
  if (parent_count <= 0.0) return;
  const std::uint32_t b = view_.child_begin[node];
  const std::uint32_t e = view_.child_begin[node + 1];
  for (std::uint32_t c = b; c < e; ++c) {
    const double p = static_cast<double>(view_.counts[c]) / parent_count;
    if (p >= threshold) {
      if (usage != nullptr) usage->nodes.push_back(c);
      out.push_back({view_.urls[c], static_cast<float>(p)});
    }
  }
}

void FrozenModel::predict_links(std::span<const UrlId> context,
                                std::vector<ppm::Prediction>& out,
                                ppm::UsageScratch* usage) const {
  const std::uint32_t root = find_root(context.back());
  if (root == kNoNode) return;
  const auto it = std::lower_bound(view_.link_roots.begin(),
                                   view_.link_roots.end(), root);
  if (it == view_.link_roots.end() || *it != root) return;
  const auto li =
      static_cast<std::uint32_t>(it - view_.link_roots.begin());
  const auto root_count = static_cast<double>(view_.counts[root]);
  std::uint32_t b = view_.link_begin[li];
  std::uint32_t e = view_.link_begin[li + 1];
  const std::uint32_t top_k = view_.header.link_top_k;
  if (top_k > 0 && e - b > top_k) e = b + top_k;
  for (std::uint32_t t = b; t < e; ++t) {
    const std::uint32_t target = view_.link_targets[t];
    const double p =
        root_count > 0.0
            ? static_cast<double>(view_.counts[target]) / root_count
            : 0.0;
    if (p >= view_.header.link_prob_threshold) {
      if (usage != nullptr) {
        usage->nodes.push_back(target);
        usage->touched = true;
      }
      out.push_back({view_.urls[target], static_cast<float>(p)});
    }
  }
}

void FrozenModel::predict(std::span<const UrlId> context,
                          std::vector<ppm::Prediction>& out,
                          ppm::UsageScratch* usage) const {
  out.clear();
  const FrozenHeader& h = view_.header;
  switch (h.model_kind) {
    case kKindStandard: {
      // Mirrors StandardPpm::predict: a fixed-height tree of H levels is an
      // order-(H-1) model, and the match policy is strict.
      const std::size_t max_ctx =
          h.max_height == 0
              ? h.max_context
              : std::min<std::size_t>(h.max_context, h.max_height - 1);
      const Match m = longest_match(context, std::max<std::size_t>(max_ctx, 1),
                                    ppm::MatchPolicy::kStrict);
      if (m.node == kNoNode) return;
      if (usage != nullptr) {
        usage->nodes.push_back(m.node);
        usage->touched = true;
      }
      emit_children(m.node, h.prob_threshold, out, usage);
      ppm::finalize_predictions(out);
      return;
    }
    case kKindLrs: {
      const Match m =
          longest_match(context, h.max_context, ppm::MatchPolicy::kStrict);
      if (m.node == kNoNode) return;
      if (usage != nullptr) {
        usage->nodes.push_back(m.node);
        usage->touched = true;
      }
      emit_children(m.node, h.prob_threshold, out, usage);
      ppm::finalize_predictions(out);
      return;
    }
    default: {  // kKindPopularity
      if (context.empty()) return;
      const Match m = longest_match(context, h.max_context,
                                    ppm::MatchPolicy::kSkipChildless);
      if (m.node != kNoNode) {
        if (usage != nullptr) {
          usage->nodes.push_back(m.node);
          usage->touched = true;
        }
        emit_children(m.node, h.prob_threshold, out, usage);
      }
      if (h.special_links != 0 && h.link_root_count > 0) {
        predict_links(context, out, usage);
      }
      ppm::finalize_predictions(out);
      return;
    }
  }
}

ppm::PredictionTree::PathUsage FrozenModel::path_usage(
    const ppm::UsageScratch& usage) const {
  ppm::PredictionTree::PathUsage result;
  result.total = view_.leaf_count;
  std::vector<std::uint32_t> uniq(usage.nodes.begin(), usage.nodes.end());
  std::sort(uniq.begin(), uniq.end());
  uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
  for (const std::uint32_t id : uniq) {
    if (id < view_.header.node_count && is_leaf(id)) ++result.used;
  }
  return result;
}

void FrozenModel::apply_usage(const ppm::UsageScratch& usage) {
  if (used_.empty()) used_.assign(view_.header.node_count, 0);
  for (const std::uint32_t id : usage.nodes) {
    if (id < used_.size() && !used_[id]) {
      used_[id] = 1;
      used_list_.push_back(id);
    }
  }
}

ppm::PredictionTree::PathUsage FrozenModel::path_usage() const {
  ppm::PredictionTree::PathUsage result;
  result.total = view_.leaf_count;
  for (const std::uint32_t id : used_list_) {
    if (is_leaf(id)) ++result.used;
  }
  return result;
}

void FrozenModel::clear_usage() {
  for (const std::uint32_t id : used_list_) used_[id] = 0;
  used_list_.clear();
}

}  // namespace webppm::frozen
