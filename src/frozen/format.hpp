// On-disk/in-memory layout of the frozen serving snapshot (DESIGN.md §12).
//
// The frozen payload is one contiguous byte range: a fixed 128-byte header
// followed by structure-of-arrays sections, each aligned to 64 bytes. The
// section *offsets are not stored* — they are recomputed from the header
// counts by builder and decoder alike, so a decoder accepts a payload only
// if its total computed size matches the mapped size exactly; a header
// field large enough to push any section out of bounds fails that single
// check before any section is touched.
//
// Node layout (the "frozen tree"): nodes are numbered in breadth-first
// level order — roots first (sorted by URL id), then all depth-2 nodes,
// then depth-3, and so on. Children of node i occupy the contiguous id
// range [child_begin[i], child_begin[i+1]) and are sorted by URL id within
// it, so child lookup is a branchless binary search over a cache-dense
// u32 slice and "emit all children" is one contiguous scan. Level order
// also makes depth implicit: the first depth-3 node is child_begin[R]
// (R = root_count), which is all the PB special-link validity rule needs —
// no per-node depth field, no parent field, no used/dead flags (12 bytes
// per node vs the arena's ~80-plus-heap).
//
// Counts stay exact u32: emitted probabilities are child.count/parent.count
// computed in double then narrowed to float, and byte-identity with the
// arena models requires the same operands. Quantization happens where the
// predictor only needs ranks: popularity grades are packed to 2 bits per
// URL, PB link preference is stored as order (pre-ranked target lists)
// rather than as the counts that induced it, and per-node depth/parent/
// usage bookkeeping is dropped entirely.
#pragma once

#include <cstdint>
#include <cstring>

#include "util/align.hpp"

namespace webppm::frozen {

inline constexpr char kMagic[8] = {'W', 'P', 'P', 'M', 'F', 'R', 'Z', '1'};

/// Which arena model the payload freezes (FrozenHeader::model_kind).
enum ModelKind : std::uint32_t {
  kKindDegraded = 0,  ///< popularity sections only (fallback-only snapshot)
  kKindStandard = 1,
  kKindLrs = 2,
  kKindPopularity = 3,
};
inline constexpr std::uint32_t kMaxModelKind = kKindPopularity;

/// Fixed-size payload header. All fields little-endian host order (the
/// store is a same-host handoff, not a wire format); trivially copyable so
/// the decoder can memcpy it out of an arbitrarily-aligned mapping.
struct FrozenHeader {
  char magic[8];               ///< kMagic
  std::uint32_t header_bytes;  ///< sizeof(FrozenHeader)
  std::uint32_t model_kind;    ///< ModelKind
  std::uint64_t payload_bytes; ///< total payload size, header included

  std::uint32_t node_count;        ///< frozen tree nodes (0 when degraded)
  std::uint32_t root_count;        ///< first root_count nodes are roots
  std::uint32_t url_count;         ///< popularity table width
  std::uint32_t link_root_count;   ///< roots owning PB special links
  std::uint32_t link_target_count; ///< total PB link targets
  std::uint32_t reserved0;

  // Model configuration (fields unused by the kind are zero).
  double prob_threshold;
  double link_prob_threshold;
  double min_relative_probability;
  std::uint32_t max_height;   ///< standard/LRS height cap (0 = unbounded)
  std::uint32_t min_support;  ///< LRS
  std::uint32_t max_context;
  std::uint32_t link_top_k;
  std::uint32_t min_absolute_count;
  std::uint32_t height_by_grade[4];
  std::uint8_t special_links;
  std::uint8_t pad[3];
  std::uint8_t reserved1[16];
};
static_assert(sizeof(FrozenHeader) == 128, "frozen header layout is part of the format");

/// Section alignment inside the payload: cache-line, so every u32 slice is
/// naturally aligned whenever the payload base is (the store page-aligns
/// the payload offset; in-memory payloads are allocator-aligned).
inline constexpr std::uint64_t kSectionAlign = 64;

/// Byte sizes and offsets of every section, derived purely from header
/// counts. Builder and decoder share this so "sizes match the mapping" is
/// the complete bounds check.
struct SectionLayout {
  std::uint64_t urls = 0;          ///< u32[node_count]
  std::uint64_t counts = 0;        ///< u32[node_count]
  std::uint64_t child_begin = 0;   ///< u32[node_count + 1] (absent when degraded)
  std::uint64_t link_roots = 0;    ///< u32[link_root_count], ascending
  std::uint64_t link_begin = 0;    ///< u32[link_root_count + 1]
  std::uint64_t link_targets = 0;  ///< u32[link_target_count], ranked per root
  std::uint64_t pop_counts = 0;    ///< u32[url_count]
  std::uint64_t pop_grades = 0;    ///< u8[ceil(url_count / 4)], 2-bit packed
  std::uint64_t total_bytes = 0;   ///< exact payload size

  std::uint64_t child_begin_entries = 0;
  std::uint64_t link_begin_entries = 0;
};

inline SectionLayout compute_layout(const FrozenHeader& h) {
  SectionLayout out;
  const std::uint64_t n = h.node_count;
  const std::uint64_t lr = h.link_root_count;
  out.child_begin_entries = h.model_kind == kKindDegraded ? 0 : n + 1;
  out.link_begin_entries = lr > 0 ? lr + 1 : 0;
  std::uint64_t at = sizeof(FrozenHeader);
  const auto place = [&at](std::uint64_t entries,
                           std::uint64_t entry_bytes) {
    at = util::align_up(at, kSectionAlign);
    const std::uint64_t offset = at;
    at += entries * entry_bytes;
    return offset;
  };
  out.urls = place(n, 4);
  out.counts = place(n, 4);
  out.child_begin = place(out.child_begin_entries, 4);
  out.link_roots = place(lr, 4);
  out.link_begin = place(out.link_begin_entries, 4);
  out.link_targets = place(h.link_target_count, 4);
  out.pop_counts = place(h.url_count, 4);
  out.pop_grades = place((static_cast<std::uint64_t>(h.url_count) + 3) / 4, 1);
  out.total_bytes = at;
  return out;
}

}  // namespace webppm::frozen
