// webppm::frozen — the immutable structure-of-arrays serving tree.
//
// The arena PredictionTree is built for training: pointer-rich nodes
// (~80 bytes plus child-map heap) that grow, prune and compact. Serving
// needs none of that: a published snapshot is immutable, so this library
// compiles the arena into a flat payload (format.hpp) that costs 12 bytes
// per node, loads by mmap with zero deserialization allocations, and
// answers predict() byte-identically to the arena model it froze.
//
// Three pieces:
//   * build_payload()  — compiles an arena model (tree + links + config +
//     popularity) into one contiguous payload string.
//   * decode_payload() — validates a payload and yields a FrozenView of
//     spans into it. Validation is a single O(payload) scan with no
//     allocations, so hostile headers can never size a buffer (the fuzz
//     suite holds it to that).
//   * FrozenModel      — a ppm::Predictor serving straight from a decoded
//     view; shares ownership of the backing bytes (heap buffer or mmap).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "frozen/format.hpp"
#include "popularity/popularity.hpp"
#include "ppm/lrs_ppm.hpp"
#include "ppm/popularity_ppm.hpp"
#include "ppm/predictor.hpp"
#include "ppm/standard_ppm.hpp"

namespace webppm::frozen {

/// What to freeze. `popularity` is always required; `tree` (and for PB,
/// `links`) are required for the non-degraded kinds. The config matching
/// `kind` is read; the others are ignored.
struct BuildSpec {
  ModelKind kind = kKindDegraded;
  ppm::StandardPpmConfig standard;
  ppm::LrsPpmConfig lrs;
  ppm::PopularityPpmConfig pb;
  const ppm::PredictionTree* tree = nullptr;
  const std::unordered_map<ppm::NodeId, std::vector<ppm::NodeId>>* links =
      nullptr;
  const popularity::PopularityTable* popularity = nullptr;
};

/// Compiles `spec` into a frozen payload (BFS level-order node layout,
/// sorted child ranges, packed grades — see format.hpp).
std::string build_payload(const BuildSpec& spec);

/// Zero-copy decoded payload: the header by value, every section as a span
/// into the payload bytes. Valid only while the backing bytes live.
struct FrozenView {
  FrozenHeader header{};
  std::span<const std::uint32_t> urls;
  std::span<const std::uint32_t> counts;
  std::span<const std::uint32_t> child_begin;  ///< node_count + 1 entries
  std::span<const std::uint32_t> link_roots;
  std::span<const std::uint32_t> link_begin;   ///< link_root_count + 1
  std::span<const std::uint32_t> link_targets;
  std::span<const std::uint32_t> pop_counts;
  std::span<const std::uint8_t> pop_grades;    ///< 2 bits per URL
  std::uint32_t depth3_begin = 0;  ///< first node id at depth >= 3
  std::size_t leaf_count = 0;

  /// Unpacked popularity grade for `u` (0 for URLs beyond the table).
  int grade(UrlId u) const {
    if (u >= header.url_count) return 0;
    return (pop_grades[u >> 2] >> ((u & 3u) * 2)) & 3u;
  }
};

/// Validates `payload` and fills `view` with spans into it. Returns false
/// with a structured reason in `error` ("frozen: children not sorted at
/// node 12") on any violation. Never allocates proportionally to claimed
/// sizes: every count is bounded by the single exact-size check before any
/// section is read. `payload.data()` must be 8-byte aligned (heap buffers
/// and page-aligned mappings both are).
bool decode_payload(std::string_view payload, FrozenView* view,
                    std::string* error);

/// A Predictor serving from a frozen payload. predict() is byte-identical
/// to the arena model the payload froze: same longest-match walk, same
/// probability arithmetic (exact u32 counts, double division, float
/// narrowing), same finalize pass — only the storage differs.
class FrozenModel final : public ppm::Predictor {
 public:
  /// Decodes `payload` (which must stay alive through `backing`) into a
  /// servable model. Returns nullptr with a reason on a malformed payload
  /// or a degraded (model-less) one — a degraded payload has no predictor
  /// to offer; the serve layer turns it into a fallback-only snapshot.
  static std::unique_ptr<FrozenModel> open(
      std::shared_ptr<const void> backing, std::string_view payload,
      std::string* error);

  void predict(std::span<const UrlId> context,
               std::vector<ppm::Prediction>& out,
               ppm::UsageScratch* usage = nullptr) const override;
  std::size_t node_count() const override { return view_.header.node_count; }
  std::size_t storage_bytes() const override {
    return payload_.size() + root_index_.capacity() * sizeof(std::uint32_t) +
           used_.capacity() * sizeof(std::uint8_t) +
           used_list_.capacity() * sizeof(std::uint32_t);
  }
  ppm::PredictionTree::PathUsage path_usage(
      const ppm::UsageScratch& usage) const override;
  void apply_usage(const ppm::UsageScratch& usage) override;
  ppm::PredictionTree::PathUsage path_usage() const override;
  void clear_usage() override;
  std::string_view name() const override { return name_; }

  const FrozenView& view() const { return view_; }
  std::string_view payload() const { return payload_; }

 private:
  FrozenModel() = default;

  struct Match {
    std::uint32_t node = kNoNode;
    std::size_t context_used = 0;
  };
  static constexpr std::uint32_t kNoNode = 0xffffffffu;

  bool is_leaf(std::uint32_t n) const {
    return view_.child_begin[n] == view_.child_begin[n + 1];
  }
  std::uint32_t find_in(std::uint32_t lo, std::uint32_t hi, UrlId url) const;
  /// O(1) root lookup via the url->root table built at open(). The arena
  /// resolves roots through a hash map; a binary search over thousands of
  /// sorted roots per context step was the frozen layout's one lookup that
  /// lost to it, so roots get a direct index (4 bytes per url — small next
  /// to the payload) while interior nodes keep the sorted-range search.
  std::uint32_t find_root(UrlId url) const {
    return url < root_index_.size() ? root_index_[url] : kNoNode;
  }
  std::uint32_t find_path(std::span<const UrlId> path) const;
  Match longest_match(std::span<const UrlId> context, std::size_t max_context,
                      ppm::MatchPolicy policy) const;
  void emit_children(std::uint32_t node, double threshold,
                     std::vector<ppm::Prediction>& out,
                     ppm::UsageScratch* usage) const;
  void predict_links(std::span<const UrlId> context,
                     std::vector<ppm::Prediction>& out,
                     ppm::UsageScratch* usage) const;

  std::shared_ptr<const void> backing_;
  std::string_view payload_;
  FrozenView view_;
  std::string name_;
  /// url -> root node id (kNoNode when the url is not a root). Sized to
  /// the largest root url + 1; built once at open().
  std::vector<std::uint32_t> root_index_;

  // Usage marks (paper path-utilisation metric). The payload itself stays
  // immutable; marks live beside it, lazily sized on first apply_usage().
  std::vector<std::uint8_t> used_;
  std::vector<std::uint32_t> used_list_;
};

}  // namespace webppm::frozen
