// cluster::HashRing — deterministic consistent hashing of ClientId onto N
// PredictServer shards (DESIGN.md §14).
//
// Every shard owns `replicas` points on a 64-bit ring, placed by hashing
// (shard, replica); a client maps to the owner of the first ring point at
// or clockwise-after its own hash. The construction is a pure function of
// (shard count, replicas): two routers — or a router and the bench's
// in-process referee — built with the same parameters agree on every
// client's shard, which is what makes the cluster's replies byte-
// comparable with a single big server's.
//
// Why consistent hashing when this PR never resizes the ring at runtime?
// Because the shard map is *state*: each shard's ModelServer holds the
// per-client session contexts for exactly the clients the ring assigns it.
// A plain `client % N` would reshuffle every client when N changes; the
// ring moves only ~1/N of them, so a future scale-out PR can grow the
// cluster by draining just the moved slice. Today the payoff is the
// stability guarantee itself — failover never remaps a client to another
// shard (the other shard has no context for it and would answer
// differently); a dead shard's clients wait behind the circuit breaker
// until it returns.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace webppm::cluster {

class HashRing {
 public:
  /// `shards` == 0 is pinned to 1; `replicas` == 0 to 1. 64 replicas per
  /// shard keeps the largest/smallest shard-load ratio under ~1.3 for the
  /// shard counts this tier targets (see ClusterHashRing.BalanceSanity).
  explicit HashRing(std::size_t shards, std::size_t replicas = 64);

  /// The shard owning `client`. O(log(shards * replicas)).
  std::size_t shard_of(ClientId client) const;

  std::size_t shards() const { return shards_; }
  std::size_t replicas() const { return replicas_; }

 private:
  struct Point {
    std::uint64_t hash;
    std::uint32_t shard;
  };

  std::size_t shards_;
  std::size_t replicas_;
  std::vector<Point> points_;  ///< sorted by hash
};

}  // namespace webppm::cluster
