#include "cluster/upstream.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "fault/fault.hpp"
#include "net/wire.hpp"

namespace webppm::cluster {
namespace {

using net::now_ms;
using net::OwnedFd;

std::string errno_string() { return std::strerror(errno); }

void set_timeout(int fd, int opt, std::uint64_t ms) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, opt, &tv, sizeof tv);
}

OwnedFd connect_to(const ShardEndpoint& ep, std::uint64_t io_timeout_ms,
                   std::string* error) {
  OwnedFd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) {
    *error = "socket: " + errno_string();
    return {};
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ep.port);
  if (::inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1) {
    *error = "inet_pton " + ep.host + ": invalid address";
    return {};
  }
  if (io_timeout_ms != 0) {
    // SO_SNDTIMEO bounds connect() on Linux as well as send().
    set_timeout(fd.get(), SO_SNDTIMEO, io_timeout_ms);
    set_timeout(fd.get(), SO_RCVTIMEO, io_timeout_ms);
  }
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    *error = "connect " + ep.host + ":" + std::to_string(ep.port) + ": " +
             errno_string();
    return {};
  }
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

bool send_all(int fd, const std::uint8_t* data, std::size_t len,
              std::string* error) {
  std::size_t done = 0;
  while (done < len) {
    const ssize_t n = ::send(fd, data + done, len - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      *error = "send: " + errno_string();
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

bool recv_exact(int fd, std::uint8_t* data, std::size_t len,
                std::string* error) {
  std::size_t done = 0;
  while (done < len) {
    const ssize_t n = ::read(fd, data + done, len - done);
    if (n == 0) {
      *error = "connection closed by shard";
      return false;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      *error = "read: " + errno_string();
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

bool recv_frame(int fd, std::uint32_t max_frame_bytes,
                std::vector<std::uint8_t>& frame, std::string* error) {
  frame.resize(net::kFrameHeaderBytes);
  if (!recv_exact(fd, frame.data(), net::kFrameHeaderBytes, error)) {
    return false;
  }
  const std::uint32_t len = static_cast<std::uint32_t>(frame[0]) |
                            (static_cast<std::uint32_t>(frame[1]) << 8) |
                            (static_cast<std::uint32_t>(frame[2]) << 16) |
                            (static_cast<std::uint32_t>(frame[3]) << 24);
  if (len == 0 || len > max_frame_bytes) {
    *error = "response frame length " + std::to_string(len) +
             " outside (0, " + std::to_string(max_frame_bytes) + "]";
    return false;
  }
  frame.resize(net::kFrameHeaderBytes + len);
  return recv_exact(fd, frame.data() + net::kFrameHeaderBytes, len, error);
}

/// Is this frame the shard's v1 kRetryLater shed answer? (The shed path
/// refuses a frame *before* processing any query in it, so it is the one
/// response status that is always safe to retry.)
bool is_shed_frame(const std::vector<std::uint8_t>& frame) {
  const auto body =
      std::span<const std::uint8_t>(frame).subspan(net::kFrameHeaderBytes);
  if (net::frame_version(body) != net::kWireVersion) return false;
  net::WireResponse resp;
  return net::decode_response(body, resp).ok() &&
         resp.status == net::Status::kRetryLater;
}

}  // namespace

bool RetryBudget::acquire(const std::atomic<bool>& abort, bool* waited) {
  if (waited != nullptr) *waited = false;
  std::unique_lock lk(mu_);
  bool counted = false;
  while (free_ == 0) {
    if (!counted) {
      counted = true;
      waits_.fetch_add(1, std::memory_order_relaxed);
      if (waited != nullptr) *waited = true;
    }
    if (abort.load(std::memory_order_acquire)) return false;
    cv_.wait_for(lk, std::chrono::milliseconds(20));
  }
  --free_;
  return true;
}

void RetryBudget::release() {
  {
    std::lock_guard lk(mu_);
    ++free_;
  }
  cv_.notify_one();
}

Upstream::Upstream(UpstreamConfig config, RetryBudget* budget,
                   const std::atomic<bool>* abort, ClusterInstruments* ins)
    : config_(std::move(config)), budget_(budget), abort_(abort), ins_(ins) {
  if (config_.max_attempts == 0) config_.max_attempts = 1;
  if (config_.breaker_threshold == 0) config_.breaker_threshold = 1;
  if (config_.breaker_retry_ms == 0) config_.breaker_retry_ms = 1;
}

Upstream::~Upstream() = default;

void Upstream::bump(std::atomic<std::uint64_t>& exact, obs::Counter* mirror,
                    std::uint64_t n) {
  exact.fetch_add(n, std::memory_order_relaxed);
  if (mirror != nullptr) mirror->add(n);
}

bool Upstream::admit(std::uint64_t deadline_ms, std::string* error) {
  std::unique_lock lk(mu_);
  for (;;) {
    if (abort_ != nullptr && abort_->load(std::memory_order_acquire)) {
      *error = "router stopping";
      return false;
    }
    if (now_ms() >= deadline_ms) {
      *error = "shard " + config_.endpoint.host + ":" +
               std::to_string(config_.endpoint.port) +
               " unavailable within deadline";
      return false;
    }
    if (admitting_) {
      if (!breaker_open_) break;
      const std::uint64_t now = now_ms();
      if (now >= next_trial_ms_) {
        // This thread becomes the half-open trial; the next one is
        // admitted a breaker_retry_ms later if we fail.
        next_trial_ms_ = now + config_.breaker_retry_ms;
        break;
      }
    }
    cv_.wait_for(lk, std::chrono::milliseconds(20));
  }
  ++inflight_io_;
  return true;
}

void Upstream::leave_io(AttemptOutcome outcome) {
  std::lock_guard lk(mu_);
  --inflight_io_;
  switch (outcome) {
    case AttemptOutcome::kOk:
      consecutive_failures_ = 0;
      if (breaker_open_) {
        breaker_open_ = false;
        bump(counters_.breaker_closes,
             ins_ != nullptr ? ins_->breaker_closes : nullptr);
      }
      break;
    case AttemptOutcome::kRetryLater:
      // The shard is alive and answering (it chose to shed); not a
      // breaker-relevant failure.
      break;
    default:
      if (++consecutive_failures_ >= config_.breaker_threshold &&
          !breaker_open_) {
        breaker_open_ = true;
        next_trial_ms_ = now_ms() + config_.breaker_retry_ms;
        bump(counters_.breaker_opens,
             ins_ != nullptr ? ins_->breaker_opens : nullptr);
      }
      break;
  }
  cv_.notify_all();
}

Upstream::AttemptOutcome Upstream::attempt(
    std::span<const std::uint8_t> frame, std::uint32_t max_resp_frame_bytes,
    std::vector<std::uint8_t>& resp, std::string* error) {
  OwnedFd fd;
  {
    std::lock_guard lk(mu_);
    if (!idle_.empty()) {
      fd = std::move(idle_.back());
      idle_.pop_back();
    }
  }
  if (!fd.valid()) {
    if (WEBPPM_FAULT_INJECT("cluster.upstream.connect")) {
      *error = "injected connect failure";
      bump(counters_.connect_failures,
           ins_ != nullptr ? ins_->connect_failures : nullptr);
      return AttemptOutcome::kConnectFailed;
    }
    fd = connect_to(config_.endpoint, config_.io_timeout_ms, error);
    if (!fd.valid()) {
      bump(counters_.connect_failures,
           ins_ != nullptr ? ins_->connect_failures : nullptr);
      return AttemptOutcome::kConnectFailed;
    }
    bump(counters_.connects, nullptr);
  }
  if (WEBPPM_FAULT_INJECT("cluster.upstream.send")) {
    // Injected send failure *before any byte leaves*: the shard never saw
    // the frame, so the retry cannot double-feed a session — the property
    // the chaos gate's byte-identity check rests on.
    *error = "injected send failure";
    bump(counters_.send_failures,
         ins_ != nullptr ? ins_->send_failures : nullptr);
    return AttemptOutcome::kSendFailed;
  }
  if (!send_all(fd.get(), frame.data(), frame.size(), error)) {
    // A pooled socket the shard closed while idle surfaces here (EPIPE);
    // the frame never reached the application, so this too retries clean.
    bump(counters_.send_failures,
         ins_ != nullptr ? ins_->send_failures : nullptr);
    return AttemptOutcome::kSendFailed;
  }
  if (!recv_frame(fd.get(), max_resp_frame_bytes, resp, error)) {
    bump(counters_.read_failures,
         ins_ != nullptr ? ins_->read_failures : nullptr);
    return AttemptOutcome::kReadFailed;
  }
  if (is_shed_frame(resp)) {
    // The shard sheds by answering kRetryLater and closing; drop the
    // socket and report the retryable outcome.
    *error = "shard shed the frame (retry-later)";
    bump(counters_.retry_later,
         ins_ != nullptr ? ins_->retry_later : nullptr);
    return AttemptOutcome::kRetryLater;
  }
  // Healthy exchange: return the socket to the pool for the next lease.
  {
    std::lock_guard lk(mu_);
    if (admitting_ && idle_.size() < config_.max_idle) {
      idle_.push_back(std::move(fd));
    }
  }
  return AttemptOutcome::kOk;
}

bool Upstream::round_trip(std::span<const std::uint8_t> frame,
                          std::uint32_t max_resp_frame_bytes,
                          std::vector<std::uint8_t>& resp,
                          std::string* error) {
  std::uint64_t seq;
  {
    std::lock_guard lk(mu_);
    seq = seed_sequence_++;
  }
  net::Backoff backoff(config_.backoff, config_.seed ^ (seq * 0x9e3779b9ull));
  const std::uint64_t deadline = now_ms() + config_.admit_wait_ms;
  std::string err;
  static const std::atomic<bool> kNeverAbort{false};
  const std::atomic<bool>& abort =
      abort_ != nullptr ? *abort_ : kNeverAbort;

  for (std::size_t attempt_no = 0;; ++attempt_no) {
    if (!admit(deadline, &err)) break;
    AttemptOutcome out =
        attempt(frame, max_resp_frame_bytes, resp, &err);
    leave_io(out);
    if (out == AttemptOutcome::kOk) {
      bump(counters_.round_trips, nullptr);
      if (error != nullptr) error->clear();
      return true;
    }
    if (attempt_no + 1 >= config_.max_attempts) {
      err += " (after " + std::to_string(attempt_no + 1) + " attempts)";
      break;
    }
    // Retry phase: bounded by the shared budget so a shard outage queues
    // instead of storming, then the backoff sleep.
    if (budget_ != nullptr) {
      bool waited = false;
      if (!budget_->acquire(abort, &waited)) {
        err = "router stopping";
        break;
      }
      if (waited && ins_ != nullptr && ins_->retry_budget_waits != nullptr) {
        ins_->retry_budget_waits->add(1);
      }
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(backoff.next_delay_ms()));
    if (budget_ != nullptr) budget_->release();
    bump(counters_.retries, ins_ != nullptr ? ins_->retries : nullptr);
  }
  bump(counters_.give_ups, ins_ != nullptr ? ins_->give_ups : nullptr);
  if (error != nullptr) *error = err;
  return false;
}

void Upstream::quiesce() {
  std::unique_lock lk(mu_);
  admitting_ = false;
  // Wait out in-flight IO: once this returns, no frame of ours is
  // mid-socket, so the shard's own drain (PR 5) flushes everything it
  // owes us before the restart.
  cv_.wait(lk, [this] { return inflight_io_ == 0; });
  idle_.clear();  // the restarted server would RST these anyway
  if (ins_ != nullptr && ins_->quiesces != nullptr) ins_->quiesces->add(1);
}

void Upstream::readmit() {
  bool closed = false;
  {
    std::lock_guard lk(mu_);
    admitting_ = true;
    closed = breaker_open_;
    breaker_open_ = false;
    consecutive_failures_ = 0;
  }
  cv_.notify_all();
  if (closed) {
    bump(counters_.breaker_closes,
         ins_ != nullptr ? ins_->breaker_closes : nullptr);
  }
  if (ins_ != nullptr && ins_->readmits != nullptr) ins_->readmits->add(1);
}

bool Upstream::admitting() const {
  std::lock_guard lk(mu_);
  return admitting_;
}

bool Upstream::breaker_open() const {
  std::lock_guard lk(mu_);
  return breaker_open_;
}

void Upstream::note_probe(bool serving) {
  bool closed = false;
  {
    std::lock_guard lk(mu_);
    if (serving && breaker_open_) {
      breaker_open_ = false;
      consecutive_failures_ = 0;
      closed = true;
    }
  }
  if (closed) {
    bump(counters_.breaker_closes,
         ins_ != nullptr ? ins_->breaker_closes : nullptr);
    cv_.notify_all();
  }
}

}  // namespace webppm::cluster
