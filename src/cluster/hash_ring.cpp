#include "cluster/hash_ring.hpp"

#include <algorithm>

namespace webppm::cluster {
namespace {

/// splitmix64 — the same finalizer quality as the serve layer's shard
/// hash, chosen here for its full-avalanche output: ring points and client
/// lookups must spread uniformly or one shard inherits a hot arc.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

HashRing::HashRing(std::size_t shards, std::size_t replicas)
    : shards_(shards == 0 ? 1 : shards),
      replicas_(replicas == 0 ? 1 : replicas) {
  points_.reserve(shards_ * replicas_);
  for (std::size_t s = 0; s < shards_; ++s) {
    for (std::size_t r = 0; r < replicas_; ++r) {
      // Mix the shard into the high half and the replica into the low so
      // (1, 0) and (0, 1) never collide structurally before hashing.
      const std::uint64_t key =
          (static_cast<std::uint64_t>(s) << 32) | static_cast<std::uint32_t>(r);
      points_.push_back({mix64(key), static_cast<std::uint32_t>(s)});
    }
  }
  std::sort(points_.begin(), points_.end(),
            [](const Point& a, const Point& b) {
              // Tie-break on shard id so equal hashes (vanishingly rare
              // but possible) still sort deterministically.
              return a.hash != b.hash ? a.hash < b.hash : a.shard < b.shard;
            });
}

std::size_t HashRing::shard_of(ClientId client) const {
  const std::uint64_t h = mix64(client);
  auto it = std::lower_bound(
      points_.begin(), points_.end(), h,
      [](const Point& p, std::uint64_t v) { return p.hash < v; });
  if (it == points_.end()) it = points_.begin();  // wrap past the top
  return it->shard;
}

}  // namespace webppm::cluster
