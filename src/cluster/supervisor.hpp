// cluster::ShardSupervisor — owns a cluster's in-process shards and drives
// snapshot distribution and zero-drop rolling restarts (DESIGN.md §14).
//
// A *shard* is three pieces with deliberately different lifetimes:
//
//   * a long-lived serve::ModelServer — it holds the per-client session
//     contexts the HashRing assigned to this shard. It survives every
//     restart; losing it would reset sessions and change predictions,
//     breaking the cluster's byte-identity contract with one big server.
//   * a recyclable net::PredictServer — the epoll front end. A "restart"
//     tears it down (drain-then-stop, PR 5) and stands a new one up on the
//     same pinned port.
//   * a per-shard serve::SnapshotStore directory (store_dir/shard-<i>) —
//     the distribution transport. distribute() publishes one snapshot
//     into every shard's store and verifies each written generation by
//     reloading it; a restart re-loads the newest intact generation, so
//     restarting onto a new model version is just distribute() followed
//     by rolling_restart().
//
// restart_shard(i) runs the drain-then-handoff sequence the router's
// admission gate makes lossless:
//
//   1. router->quiesce_shard(i)   — new round trips park at the gate;
//                                   in-flight IO is waited out
//   2. PredictServer::shutdown()  — drains owed responses, closes
//   3. store.load_latest()        — newest intact generation
//   4. model.publish(loaded)      — same ModelServer, contexts intact
//   5. new PredictServer on the   — bind retried briefly (TIME_WAIT)
//      same port, start()
//   6. wait for /healthz to answer "serving" at the loaded version
//   7. router->readmit_shard(i)   — parked round trips proceed
//
// Requests addressed to the shard during 2-6 wait inside the router
// (bounded by the upstream's admit_wait_ms), then complete against the
// restarted shard: zero dropped, zero duplicated — the gate admits a
// frame's IO exactly once. rolling_restart() applies this shard-by-shard;
// the webppm_cluster_version_skew gauge is nonzero only inside the window
// where some shards serve the old version and others the new.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/router.hpp"
#include "cluster/upstream.hpp"
#include "learn/trainer.hpp"
#include "net/server.hpp"
#include "serve/model_server.hpp"
#include "serve/snapshot_store.hpp"

namespace webppm::cluster {

struct SupervisorConfig {
  /// Base directory; shard i publishes/loads under store_dir + "/shard-<i>".
  std::string store_dir;
  std::size_t shards = 4;
  /// Per-shard ModelServer template. `metrics` should stay null here —
  /// N shards registering the same webppm_serve_* names into one registry
  /// would alias; attach a registry to the router instead.
  serve::ModelServerConfig model;
  /// Per-shard PredictServer template; host/port/admin_port are
  /// overridden (ephemeral on first start, pinned across restarts).
  net::NetServerConfig net;
  /// Per-shard SnapshotStore template; `dir` is overridden.
  serve::SnapshotStoreConfig store;
  /// How long restart_shard waits for the restarted shard's /healthz to
  /// answer "serving" at the expected version before reporting failure.
  std::uint64_t probe_timeout_ms = 5000;
  /// How long to keep retrying the pinned-port bind on restart (the old
  /// socket can linger briefly).
  std::uint64_t bind_retry_ms = 2000;
};

class ShardSupervisor {
 public:
  explicit ShardSupervisor(SupervisorConfig config);
  ~ShardSupervisor();

  ShardSupervisor(const ShardSupervisor&) = delete;
  ShardSupervisor& operator=(const ShardSupervisor&) = delete;

  /// Publishes `snap` into every shard's store and *verifies* each written
  /// generation by reloading it (checksum + structure + version match).
  /// Call before start() for the initial version and again for each
  /// upgrade. False with *error naming the first failing shard.
  bool distribute(const serve::Snapshot& snap, std::string* error);

  /// Loads every shard's newest intact generation, publishes it into the
  /// shard's ModelServer, and starts the PredictServers (ephemeral ports,
  /// pinned thereafter). Requires a prior distribute() (or pre-populated
  /// stores).
  bool start(std::string* error);
  void stop();

  /// Wire the router in after start() (the router needs the shards'
  /// bound ports). Restarts quiesce/readmit through it when attached.
  void attach_router(PredictRouter* router) { router_ = router; }

  /// Endpoints of the running shards (valid after start()).
  std::vector<ShardEndpoint> endpoints() const;

  /// Drain-then-handoff restart of one shard onto its store's newest
  /// generation (sequence in the header comment). Zero-drop requires an
  /// attached router; without one, in-flight client frames race the drain
  /// exactly as they would against a lone PredictServer.
  bool restart_shard(std::size_t shard, std::string* error);

  /// restart_shard over every shard in turn. After distribute()-ing a new
  /// version this upgrades the whole cluster with version skew returning
  /// to 0 (the router's gauge tracks the window).
  bool rolling_restart(std::string* error);

  /// Online training (DESIGN.md §15): stands one learn::OnlineTrainer per
  /// shard, attached to the shard's long-lived ModelServer, each training a
  /// private shadow from exactly the clients the HashRing routes to that
  /// shard and publishing into that shard's store + ModelServer. `cfg` is
  /// a template: session rules are overridden to mirror the shard model's
  /// (they must match) and `store`/`metrics` are overridden per shard (the
  /// shard's own store; metrics stay detached — N trainers registering the
  /// same webppm_learn_* names into one registry would alias). Trainer
  /// threads start immediately. False if trainers are already running.
  /// Trainers survive restart_shard(): the ModelServer they feed is the
  /// piece restarts deliberately keep.
  bool start_trainers(const learn::OnlineTrainerConfig& cfg);
  /// Detaches every trainer from its shard's serve path, drains and joins
  /// the trainer threads. Idempotent; stop() calls it.
  void stop_trainers();
  /// The running trainer of `shard` (nullptr when trainers are stopped).
  learn::OnlineTrainer* trainer(std::size_t shard);

  std::size_t shard_count() const { return shards_.size(); }
  serve::ModelServer& model(std::size_t shard);
  net::PredictServer* server(std::size_t shard);
  /// Snapshot version shard is serving (0 = none).
  std::uint64_t serving_version(std::size_t shard) const;
  std::uint64_t rolling_restarts() const { return rolling_restarts_; }
  std::uint64_t shard_restarts() const { return shard_restarts_; }

 private:
  struct Shard {
    std::unique_ptr<serve::SnapshotStore> store;
    std::unique_ptr<serve::ModelServer> model;
    std::unique_ptr<net::PredictServer> server;
    std::unique_ptr<learn::OnlineTrainer> trainer;  ///< null until started
    std::uint16_t port = 0;        ///< pinned after first start
    std::uint16_t admin_port = 0;  ///< pinned after first start
  };

  std::string shard_dir(std::size_t shard) const;
  bool start_server(std::size_t shard, bool pinned, std::string* error);
  /// Polls the shard's /healthz until it answers serving at `version`.
  bool await_healthy(std::size_t shard, std::uint64_t version,
                     std::string* error);

  SupervisorConfig config_;
  std::vector<Shard> shards_;
  PredictRouter* router_ = nullptr;
  bool started_ = false;
  std::uint64_t rolling_restarts_ = 0;
  std::uint64_t shard_restarts_ = 0;
};

}  // namespace webppm::cluster
