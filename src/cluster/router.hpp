// cluster::PredictRouter — the front door of a sharded prediction cluster
// (DESIGN.md §14).
//
// Clients speak the ordinary v1/v2 wire protocol to the router as if it
// were one big PredictServer; the router consistent-hashes each query's
// ClientId onto its shard (HashRing) and forwards the frame over that
// shard's Upstream pool, relaying the answer byte-for-byte. A v2 batch
// whose entries all hash to one shard is forwarded verbatim (the common
// case under client-disjoint load); a mixed batch is split into per-shard
// sub-batches and the sub-answers reassembled in the original entry order
// — re-encoding a decoded sub-response is bit-exact, so either path yields
// the same bytes one big server would have sent.
//
// Failure contract: a round trip that exhausts its retry/deadline budget
// degrades to a kRetryLater answer for that one query (batch entries from
// a failed shard degrade per-slot); the connection stays up, nothing is
// silently dropped, and every retry, breaker transition, and give-up is
// accounted in webppm_cluster_* metrics. Shard death is survived by the
// Upstream breaker + the health prober (GET /healthz per shard, parsed by
// net::parse_healthz) — never by remapping clients: a shard's ModelServer
// holds its clients' session contexts, so remapping would change answers.
// The prober also feeds the webppm_cluster_version_skew gauge (max-min
// serving snapshot version across reachable shards), the signal the
// ShardSupervisor drives rolling restarts by.
//
// Threading: one blocking thread per downstream connection (the router is
// IO-bound on upstream round trips, and closed-loop clients hold exactly
// one frame in flight), an acceptor thread that also serves the admin
// listener (GET /metrics, /healthz, /cluster), and the prober thread.
// Shutdown is drain-then-stop: in-flight round trips complete and their
// answers flush before the sockets close.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cluster/hash_ring.hpp"
#include "cluster/upstream.hpp"
#include "net/load_client.hpp"
#include "net/wire.hpp"
#include "obs/metrics.hpp"

namespace webppm::cluster {

struct RouterConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral (read back via port())
  bool admin = true;
  std::uint16_t admin_port = 0;  ///< 0 = ephemeral (admin_port())
  /// The shards, in ring order. Fixed for the router's lifetime.
  std::vector<ShardEndpoint> shards;
  std::size_t ring_replicas = 64;
  /// Downstream connection cap; excess connections get one kRetryLater
  /// frame and a close, mirroring PredictServer's shed contract.
  std::size_t max_connections = 1024;
  /// Cap on client-claimed request frames (and v1 response frames).
  std::uint32_t max_frame_bytes = net::kDefaultMaxFrameBytes;
  /// Per-shard upstream template; `endpoint` and `seed` are overwritten
  /// per shard (seed + shard index keeps jitter streams distinct).
  UpstreamConfig upstream;
  /// Concurrent round trips allowed in their retry phase, router-wide.
  std::size_t retry_budget = 8;
  /// /healthz probe cadence; 0 disables the prober (breakers then rely on
  /// half-open trials alone, and version_skew() reads as unknown).
  std::uint64_t probe_interval_ms = 100;
  obs::MetricsRegistry* metrics = nullptr;
};

class PredictRouter {
 public:
  explicit PredictRouter(RouterConfig config);
  ~PredictRouter();

  PredictRouter(const PredictRouter&) = delete;
  PredictRouter& operator=(const PredictRouter&) = delete;

  /// Binds, spawns acceptor + prober. False with *error on bind failure.
  bool start(std::string* error);
  /// Drain-then-stop: stop accepting/reading, let in-flight round trips
  /// finish and flush, join every thread. Idempotent.
  void shutdown();

  std::uint16_t port() const { return port_; }
  std::uint16_t admin_port() const { return admin_port_; }

  const HashRing& ring() const { return ring_; }
  std::size_t shard_of(ClientId client) const { return ring_.shard_of(client); }
  std::size_t shard_count() const { return upstreams_.size(); }
  Upstream& upstream(std::size_t shard) { return *upstreams_[shard]; }

  /// Supervisor hooks for a rolling restart: quiesce parks the shard's
  /// new round trips at the admission gate and waits out in-flight IO;
  /// readmit reopens after the restarted shard probes healthy.
  void quiesce_shard(std::size_t shard) { upstreams_[shard]->quiesce(); }
  void readmit_shard(std::size_t shard) { upstreams_[shard]->readmit(); }

  /// Last probe result for one shard (all-defaults before the first
  /// probe round or with the prober disabled).
  struct ShardHealth {
    bool reachable = false;
    net::HealthzInfo info;
  };
  ShardHealth shard_health(std::size_t shard) const;
  /// max - min serving snapshot version across reachable serving shards
  /// (0 when fewer than two are reachable — skew needs a pair to exist).
  std::uint64_t version_skew() const;

  // Exact counters, maintained whether or not a registry is attached (the
  // webppm_cluster_* metrics mirror them one-to-one). Per-shard upstream
  // counters are on upstream(i).counters().
  std::uint64_t requests() const { return requests_.load(std::memory_order_relaxed); }
  std::uint64_t responses() const { return responses_.load(std::memory_order_relaxed); }
  std::uint64_t batches() const { return batches_.load(std::memory_order_relaxed); }
  std::uint64_t degraded_responses() const { return degraded_.load(std::memory_order_relaxed); }
  std::uint64_t protocol_errors() const { return protocol_errors_.load(std::memory_order_relaxed); }
  std::uint64_t shed() const { return shed_.load(std::memory_order_relaxed); }
  std::uint64_t accepted() const { return accepted_.load(std::memory_order_relaxed); }
  std::uint64_t probes() const { return probes_.load(std::memory_order_relaxed); }
  std::uint64_t probe_failures() const { return probe_failures_.load(std::memory_order_relaxed); }
  std::uint64_t retry_budget_waits() const { return budget_.waits(); }

  const RouterConfig& config() const { return config_; }

 private:
  struct DownConn {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void acceptor_main();
  void prober_main();
  void conn_main(DownConn* c);
  /// Handles one parsed frame (full bytes incl. header); appends the
  /// response frame(s) to `out`. Returns false when the connection must
  /// close after flushing (protocol error).
  bool handle_frame(std::span<const std::uint8_t> frame,
                    std::span<const std::uint8_t> body,
                    std::vector<std::uint8_t>& out);
  void handle_batch(std::span<const std::uint8_t> frame,
                    const std::vector<net::WireRequest>& entries,
                    std::vector<std::uint8_t>& out);
  void handle_admin(int fd);
  std::string admin_response(const std::string& request_line);
  void reap_finished(bool all);
  void refresh_gauges();

  void count(std::atomic<std::uint64_t>& exact, obs::Counter* mirror,
             std::uint64_t n = 1);

  RouterConfig config_;
  HashRing ring_;
  RetryBudget budget_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;
  std::unique_ptr<ClusterInstruments> ins_;
  std::vector<std::unique_ptr<Upstream>> upstreams_;

  net::OwnedFd listen_fd_;
  net::OwnedFd admin_fd_;
  std::uint16_t port_ = 0;
  std::uint16_t admin_port_ = 0;
  std::thread acceptor_;
  std::thread prober_;

  std::mutex conns_mu_;
  std::vector<std::unique_ptr<DownConn>> conns_;
  std::atomic<std::size_t> active_{0};

  mutable std::mutex health_mu_;
  std::vector<ShardHealth> health_;

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> responses_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> degraded_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> probes_{0};
  std::atomic<std::uint64_t> probe_failures_{0};
};

}  // namespace webppm::cluster
