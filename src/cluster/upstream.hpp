// cluster::Upstream — one shard's pooled, breaker-guarded client side of
// the wire protocol (DESIGN.md §14).
//
// The router leases a pooled blocking connection for one strict
// request/response round trip at a time (the wire protocol has no
// correlation ids, so a connection can never carry two outstanding
// frames), and every transient failure — refused connect, EPIPE, a read
// timing out or the socket dying mid-response, or the shard answering
// kRetryLater — is retried under capped exponential backoff with seeded
// jitter, bounded two ways:
//
//   * per round trip by `max_attempts` and a wall-clock deadline
//     (`admit_wait_ms`), after which the router degrades that one answer
//     to kRetryLater instead of wedging the client forever;
//   * across the router by a RetryBudget: only `slots` round trips may be
//     in their retry phase (backoff sleep + re-attempt) concurrently, so a
//     shard outage turns into an orderly queue, not a retry storm that
//     greets the recovering shard with a thundering herd.
//
// A shard that fails `breaker_threshold` consecutive attempts trips the
// circuit breaker: new round trips park at the admission gate instead of
// burning their attempt budget against a dead socket. While open, one
// waiter per `breaker_retry_ms` is let through as the half-open trial;
// its success — or the health prober seeing /healthz serving again —
// closes the breaker and wakes everyone. The same gate implements
// quiesce(): the supervisor closes admission before restarting the shard
// (waiting out in-flight IO so no frame is mid-socket when the server
// drains) and readmit()s after the restarted shard probes healthy, which
// is what makes a rolling restart drop zero predictions.
//
// Retry safety: the sessionizer feeds on every processed click, so a
// retried frame must never have been processed the first time. The
// transient causes above all precede processing (connect/send failures,
// shed-at-accept kRetryLater) — except a read failure after a successful
// send, where the shard may or may not have answered. Those are retried
// at-least-once and counted separately (read_failures); the chaos gate
// injects only the pre-send fault sites (`cluster.upstream.connect`,
// `cluster.upstream.send`), so determinism gates stay exact while the
// read-failure path stays covered by the non-gating storm tests.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "net/backoff.hpp"
#include "net/event_loop.hpp"
#include "obs/metrics.hpp"

namespace webppm::cluster {

struct ShardEndpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;        ///< prediction port
  std::uint16_t admin_port = 0;  ///< /metrics + /healthz (0 = no admin)
};

/// Bounds how many round trips may be in their retry phase at once across
/// the whole router. Waiting for a slot is deliberate load shedding: a
/// parked waiter costs nothing, a retry burst against a struggling shard
/// costs it exactly the capacity it needs to recover.
class RetryBudget {
 public:
  explicit RetryBudget(std::size_t slots) : free_(slots == 0 ? 1 : slots) {}

  /// Blocks until a slot frees or `abort` goes true (returns false; no
  /// slot held). Counts the contended acquisitions; `*waited` reports
  /// whether *this* call had to wait.
  bool acquire(const std::atomic<bool>& abort, bool* waited = nullptr);
  void release();

  /// Acquisitions that had to wait for a slot.
  std::uint64_t waits() const {
    return waits_.load(std::memory_order_relaxed);
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::size_t free_;
  std::atomic<std::uint64_t> waits_{0};
};

struct UpstreamConfig {
  ShardEndpoint endpoint;
  /// Idle pooled connections kept per shard (excess closes on return).
  std::size_t max_idle = 4;
  /// SO_RCVTIMEO/SO_SNDTIMEO on every leased socket: a wedged shard turns
  /// into a counted IO failure, never a hung router thread.
  std::uint64_t io_timeout_ms = 5000;
  /// IO attempts per round trip before the router degrades the answer.
  std::size_t max_attempts = 10;
  /// Wall-clock budget per round trip, covering admission waits (a shard
  /// mid-restart) and backoff sleeps. Must comfortably exceed a rolling
  /// restart's quiesce→readmit window.
  std::uint64_t admit_wait_ms = 10'000;
  net::BackoffPolicy backoff{.initial_ms = 1, .max_ms = 100};
  /// Consecutive failed attempts that trip the breaker open.
  std::uint32_t breaker_threshold = 3;
  /// While open, one half-open trial is admitted per this interval.
  std::uint64_t breaker_retry_ms = 100;
  /// Jitter seed (shard index folded in by the router for distinct
  /// per-shard streams).
  std::uint64_t seed = 1;
};

/// Exact per-shard counters, maintained whether or not a registry is
/// attached; the webppm_cluster_* metrics mirror their sums one-to-one.
struct UpstreamCounters {
  std::atomic<std::uint64_t> round_trips{0};   ///< successful round trips
  std::atomic<std::uint64_t> retries{0};       ///< re-attempts taken
  std::atomic<std::uint64_t> connects{0};      ///< sockets opened
  std::atomic<std::uint64_t> connect_failures{0};
  std::atomic<std::uint64_t> send_failures{0};
  std::atomic<std::uint64_t> read_failures{0};
  std::atomic<std::uint64_t> retry_later{0};   ///< upstream shed answers
  std::atomic<std::uint64_t> breaker_opens{0};
  std::atomic<std::uint64_t> breaker_closes{0};
  std::atomic<std::uint64_t> give_ups{0};      ///< round trips abandoned
};

/// Shared obs mirrors (one set for the whole cluster tier; nullable).
struct ClusterInstruments {
  obs::Counter* requests = nullptr;
  obs::Counter* responses = nullptr;
  obs::Counter* batches = nullptr;
  obs::Counter* retries = nullptr;
  obs::Counter* connect_failures = nullptr;
  obs::Counter* send_failures = nullptr;
  obs::Counter* read_failures = nullptr;
  obs::Counter* retry_later = nullptr;
  obs::Counter* breaker_opens = nullptr;
  obs::Counter* breaker_closes = nullptr;
  obs::Counter* retry_budget_waits = nullptr;
  obs::Counter* give_ups = nullptr;
  obs::Counter* quiesces = nullptr;
  obs::Counter* readmits = nullptr;
  obs::Counter* probes = nullptr;
  obs::Counter* probe_failures = nullptr;
  obs::Counter* protocol_errors = nullptr;
  obs::Counter* shed = nullptr;
  obs::Gauge* version_skew = nullptr;
  obs::Gauge* shards_serving = nullptr;
  obs::Gauge* breakers_open = nullptr;
};

class Upstream {
 public:
  /// `budget` and `abort` are shared router-level objects (both may be
  /// null for standalone use); `ins` the shared obs mirrors (nullable).
  Upstream(UpstreamConfig config, RetryBudget* budget,
           const std::atomic<bool>* abort, ClusterInstruments* ins);
  ~Upstream();

  Upstream(const Upstream&) = delete;
  Upstream& operator=(const Upstream&) = delete;

  /// Sends one framed request (`frame` = header + body, forwarded
  /// verbatim) and reads one whole response frame into `resp` (header +
  /// body, cleared first). Blocking; retries transients per config.
  /// Returns false when the attempt/deadline budget is spent or the
  /// router is stopping — the caller answers the client kRetryLater.
  bool round_trip(std::span<const std::uint8_t> frame,
                  std::uint32_t max_resp_frame_bytes,
                  std::vector<std::uint8_t>& resp, std::string* error);

  /// Close admission, wait out in-flight IO, drop pooled sockets. Round
  /// trips arriving meanwhile park at the gate (within their deadline).
  void quiesce();
  /// Reopen admission (after the shard probes healthy) and wake waiters.
  void readmit();
  bool admitting() const;

  bool breaker_open() const;
  /// Health-prober feedback: a serving /healthz closes the breaker (and
  /// resets the failure streak) without burning a request as the trial.
  void note_probe(bool serving);

  const UpstreamCounters& counters() const { return counters_; }
  const ShardEndpoint& endpoint() const { return config_.endpoint; }
  const UpstreamConfig& config() const { return config_; }

 private:
  enum class AttemptOutcome : std::uint8_t {
    kOk,
    kConnectFailed,
    kSendFailed,
    kReadFailed,
    kRetryLater,  ///< shard answered a v1 kRetryLater shed frame
  };

  /// One IO attempt: lease/connect, send, read one frame. Never blocks
  /// beyond io_timeout_ms per syscall.
  AttemptOutcome attempt(std::span<const std::uint8_t> frame,
                         std::uint32_t max_resp_frame_bytes,
                         std::vector<std::uint8_t>& resp, std::string* error);

  /// Waits at the admission gate (quiesce + breaker). Returns false on
  /// abort/deadline. On success the caller is inside the IO section
  /// (inflight_io_ incremented).
  bool admit(std::uint64_t deadline_ms, std::string* error);
  void leave_io(AttemptOutcome outcome);

  void bump(std::atomic<std::uint64_t>& exact, obs::Counter* mirror,
            std::uint64_t n = 1);

  UpstreamConfig config_;
  RetryBudget* budget_;
  const std::atomic<bool>* abort_;
  ClusterInstruments* ins_;
  UpstreamCounters counters_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<net::OwnedFd> idle_;
  bool admitting_ = true;
  bool breaker_open_ = false;
  std::uint32_t consecutive_failures_ = 0;
  std::uint64_t next_trial_ms_ = 0;
  std::size_t inflight_io_ = 0;
  std::uint64_t seed_sequence_ = 0;  ///< distinct jitter stream per trip
};

}  // namespace webppm::cluster
