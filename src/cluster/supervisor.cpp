#include "cluster/supervisor.hpp"

#include <chrono>
#include <filesystem>
#include <system_error>
#include <thread>
#include <utility>

#include "net/load_client.hpp"

namespace webppm::cluster {

namespace fs = std::filesystem;

namespace {

std::uint64_t now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

ShardSupervisor::ShardSupervisor(SupervisorConfig config)
    : config_(std::move(config)) {
  if (config_.shards == 0) config_.shards = 1;
  shards_.resize(config_.shards);
  std::error_code ec;
  fs::create_directories(config_.store_dir, ec);  // stores create one level
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    serve::SnapshotStoreConfig sc = config_.store;
    sc.dir = shard_dir(i);
    // One registry cannot hold N stores' identically-named metrics.
    sc.metrics = nullptr;
    shards_[i].store = std::make_unique<serve::SnapshotStore>(std::move(sc));
    serve::ModelServerConfig mc = config_.model;
    mc.metrics = nullptr;  // same aliasing hazard (header comment)
    shards_[i].model = std::make_unique<serve::ModelServer>(mc);
  }
}

ShardSupervisor::~ShardSupervisor() { stop(); }

std::string ShardSupervisor::shard_dir(std::size_t shard) const {
  return config_.store_dir + "/shard-" + std::to_string(shard);
}

bool ShardSupervisor::distribute(const serve::Snapshot& snap,
                                 std::string* error) {
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    auto pub = shards_[i].store->publish(snap);
    if (!pub.ok) {
      if (error != nullptr) {
        *error = "shard " + std::to_string(i) + ": publish: " + pub.error;
      }
      return false;
    }
    // Verify by reloading: the generation just written must be the newest
    // intact one and carry the distributed version, else the shard would
    // restart onto something other than what we think we shipped.
    auto loaded = shards_[i].store->load_latest();
    if (loaded.snapshot == nullptr) {
      if (error != nullptr) {
        *error = "shard " + std::to_string(i) + ": verify: " + loaded.error;
      }
      return false;
    }
    if (loaded.generation != pub.generation ||
        loaded.snapshot->version != snap.version) {
      if (error != nullptr) {
        *error = "shard " + std::to_string(i) + ": verify: loaded gen " +
                 std::to_string(loaded.generation) + " v" +
                 std::to_string(loaded.snapshot->version) +
                 ", published gen " + std::to_string(pub.generation) + " v" +
                 std::to_string(snap.version);
      }
      return false;
    }
  }
  return true;
}

bool ShardSupervisor::start_server(std::size_t shard, bool pinned,
                                   std::string* error) {
  Shard& s = shards_[shard];
  net::NetServerConfig nc = config_.net;
  nc.admin = true;  // the router's prober and await_healthy need /healthz
  nc.port = pinned ? s.port : std::uint16_t{0};
  nc.admin_port = pinned ? s.admin_port : std::uint16_t{0};
  const std::uint64_t deadline = now_ms() + config_.bind_retry_ms;
  std::string err;
  for (;;) {
    auto server = std::make_unique<net::PredictServer>(*s.model, nc);
    if (server->start(&err)) {
      s.server = std::move(server);
      s.port = s.server->port();
      s.admin_port = s.server->admin_port();
      return true;
    }
    // A pinned port can linger in the kernel briefly after the previous
    // server's close; retry until bind_retry_ms is spent.
    if (!pinned || now_ms() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  if (error != nullptr) {
    *error = "shard " + std::to_string(shard) + ": start: " + err;
  }
  return false;
}

bool ShardSupervisor::start(std::string* error) {
  if (started_) return true;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    auto loaded = shards_[i].store->load_latest();
    if (loaded.snapshot == nullptr) {
      if (error != nullptr) {
        *error = "shard " + std::to_string(i) + ": load: " + loaded.error;
      }
      stop();
      return false;
    }
    shards_[i].model->publish(loaded.snapshot);
    if (!start_server(i, /*pinned=*/false, error)) {
      stop();
      return false;
    }
  }
  started_ = true;
  return true;
}

void ShardSupervisor::stop() {
  stop_trainers();
  for (Shard& s : shards_) {
    if (s.server != nullptr) {
      s.server->shutdown();
      s.server.reset();
    }
  }
  started_ = false;
}

bool ShardSupervisor::start_trainers(const learn::OnlineTrainerConfig& cfg) {
  for (const Shard& s : shards_) {
    if (s.trainer != nullptr) return false;  // already running
  }
  for (Shard& s : shards_) {
    learn::OnlineTrainerConfig shard_cfg = cfg;
    // Session rules must mirror the shard model's, or shadow sessions
    // diverge from the contexts the shard predicts from.
    shard_cfg.session = config_.model.session;
    shard_cfg.store = s.store.get();
    shard_cfg.metrics = nullptr;  // N same-named registrations would alias
    s.trainer = std::make_unique<learn::OnlineTrainer>(*s.model, shard_cfg);
    s.trainer->attach();
    s.trainer->start();
  }
  return true;
}

void ShardSupervisor::stop_trainers() {
  for (Shard& s : shards_) {
    if (s.trainer != nullptr) {
      s.trainer->detach();
      s.trainer->stop();
      s.trainer.reset();
    }
  }
}

learn::OnlineTrainer* ShardSupervisor::trainer(std::size_t shard) {
  if (shard >= shards_.size()) return nullptr;
  return shards_[shard].trainer.get();
}

std::vector<ShardEndpoint> ShardSupervisor::endpoints() const {
  std::vector<ShardEndpoint> eps;
  eps.reserve(shards_.size());
  for (const Shard& s : shards_) {
    eps.push_back(ShardEndpoint{"127.0.0.1", s.port, s.admin_port});
  }
  return eps;
}

bool ShardSupervisor::await_healthy(std::size_t shard, std::uint64_t version,
                                    std::string* error) {
  const Shard& s = shards_[shard];
  const std::uint64_t deadline = now_ms() + config_.probe_timeout_ms;
  std::string last;
  for (;;) {
    std::string err;
    const std::string body =
        net::fetch_admin("127.0.0.1", s.admin_port, "/healthz", &err);
    net::HealthzInfo info;
    if (err.empty() && net::parse_healthz(body, info) && info.serving() &&
        info.version == version) {
      return true;
    }
    last = err.empty() ? ("healthz: " + body) : err;
    if (now_ms() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  if (error != nullptr) {
    *error = "shard " + std::to_string(shard) +
             ": not serving v" + std::to_string(version) + " within " +
             std::to_string(config_.probe_timeout_ms) + "ms (" + last + ")";
  }
  return false;
}

bool ShardSupervisor::restart_shard(std::size_t shard, std::string* error) {
  if (shard >= shards_.size() || !started_) {
    if (error != nullptr) *error = "no such running shard";
    return false;
  }
  Shard& s = shards_[shard];
  if (router_ != nullptr) router_->quiesce_shard(shard);

  // From here on the shard must come back before readmission, so failures
  // leave the gate closed — parked round trips then degrade at their
  // deadline rather than hitting a half-restarted shard.
  s.server->shutdown();
  s.server.reset();

  auto loaded = s.store->load_latest();
  if (loaded.snapshot == nullptr) {
    if (error != nullptr) {
      *error = "shard " + std::to_string(shard) + ": load: " + loaded.error;
    }
    return false;
  }
  // Same ModelServer: session contexts survive, only the model swaps.
  s.model->publish(loaded.snapshot);

  if (!start_server(shard, /*pinned=*/true, error)) return false;
  if (!await_healthy(shard, loaded.snapshot->version, error)) return false;

  if (router_ != nullptr) router_->readmit_shard(shard);
  ++shard_restarts_;
  return true;
}

bool ShardSupervisor::rolling_restart(std::string* error) {
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (!restart_shard(i, error)) return false;
  }
  ++rolling_restarts_;
  return true;
}

serve::ModelServer& ShardSupervisor::model(std::size_t shard) {
  return *shards_[shard].model;
}

net::PredictServer* ShardSupervisor::server(std::size_t shard) {
  return shards_[shard].server.get();
}

std::uint64_t ShardSupervisor::serving_version(std::size_t shard) const {
  return shards_[shard].model->version();
}

}  // namespace webppm::cluster
