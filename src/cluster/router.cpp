#include "cluster/router.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "fault/fault.hpp"

namespace webppm::cluster {
namespace {

using net::now_ms;
using net::OwnedFd;

constexpr int kTickMs = 100;  ///< upper bound on stop-flag latency
constexpr std::size_t kReadChunkBytes = 16 * 1024;
constexpr std::size_t kAdminRequestCapBytes = 4 * 1024;

std::string errno_string() { return std::strerror(errno); }

/// Blocking listener (the router's connection handling is thread-per-conn;
/// only accept() needs to poll for the stop flag). port 0 = ephemeral.
std::string open_listener(const std::string& host, std::uint16_t port,
                          OwnedFd& out, std::uint16_t* bound_port) {
  OwnedFd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return "socket: " + errno_string();
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return "inet_pton " + host + ": invalid address";
  }
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
    return "bind " + host + ":" + std::to_string(port) + ": " +
           errno_string();
  }
  if (::listen(fd.get(), 128) != 0) return "listen: " + errno_string();
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    return "getsockname: " + errno_string();
  }
  *bound_port = ntohs(bound.sin_port);
  out = std::move(fd);
  return {};
}

void set_recv_timeout(int fd, std::uint64_t ms) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
}

bool send_all(int fd, const std::uint8_t* data, std::size_t len) {
  std::size_t done = 0;
  while (done < len) {
    const ssize_t n = ::send(fd, data + done, len - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

/// The router's own degraded answer for one query: kRetryLater with
/// snapshot version 0 (the router serves no snapshot — version 0 marks
/// the answer as router-degraded, distinguishable from any shard's).
net::WireResponse retry_later_response() {
  net::WireResponse resp;
  resp.status = net::Status::kRetryLater;
  resp.snapshot_version = 0;
  return resp;
}

}  // namespace

PredictRouter::PredictRouter(RouterConfig config)
    : config_(std::move(config)),
      ring_(config_.shards.empty() ? 1 : config_.shards.size(),
            config_.ring_replicas),
      budget_(config_.retry_budget) {
  if (config_.max_frame_bytes == 0) {
    config_.max_frame_bytes = net::kDefaultMaxFrameBytes;
  }
  if (config_.metrics != nullptr) {
    auto& reg = *config_.metrics;
    ins_ = std::make_unique<ClusterInstruments>(ClusterInstruments{
        &reg.counter("webppm_cluster_requests_total"),
        &reg.counter("webppm_cluster_responses_total"),
        &reg.counter("webppm_cluster_batches_total"),
        &reg.counter("webppm_cluster_retries_total"),
        &reg.counter("webppm_cluster_connect_failures_total"),
        &reg.counter("webppm_cluster_send_failures_total"),
        &reg.counter("webppm_cluster_read_failures_total"),
        &reg.counter("webppm_cluster_retry_later_total"),
        &reg.counter("webppm_cluster_breaker_opens_total"),
        &reg.counter("webppm_cluster_breaker_closes_total"),
        &reg.counter("webppm_cluster_retry_budget_waits_total"),
        &reg.counter("webppm_cluster_give_ups_total"),
        &reg.counter("webppm_cluster_quiesces_total"),
        &reg.counter("webppm_cluster_readmits_total"),
        &reg.counter("webppm_cluster_probes_total"),
        &reg.counter("webppm_cluster_probe_failures_total"),
        &reg.counter("webppm_cluster_protocol_errors_total"),
        &reg.counter("webppm_cluster_shed_total"),
        &reg.gauge("webppm_cluster_version_skew"),
        &reg.gauge("webppm_cluster_shards_serving"),
        &reg.gauge("webppm_cluster_breakers_open"),
    });
  }
  upstreams_.reserve(config_.shards.size());
  for (std::size_t i = 0; i < config_.shards.size(); ++i) {
    UpstreamConfig ucfg = config_.upstream;
    ucfg.endpoint = config_.shards[i];
    ucfg.seed = config_.upstream.seed + i;
    upstreams_.push_back(std::make_unique<Upstream>(
        std::move(ucfg), &budget_, &stopping_, ins_.get()));
  }
  health_.resize(config_.shards.size());
}

PredictRouter::~PredictRouter() { shutdown(); }

void PredictRouter::count(std::atomic<std::uint64_t>& exact,
                          obs::Counter* mirror, std::uint64_t n) {
  exact.fetch_add(n, std::memory_order_relaxed);
  if (mirror != nullptr) mirror->add(n);
}

bool PredictRouter::start(std::string* error) {
  if (started_) {
    if (error != nullptr) *error = "already started";
    return false;
  }
  if (upstreams_.empty()) {
    if (error != nullptr) *error = "no shards configured";
    return false;
  }
  std::string err =
      open_listener(config_.host, config_.port, listen_fd_, &port_);
  if (!err.empty()) {
    if (error != nullptr) *error = err;
    return false;
  }
  if (config_.admin) {
    err = open_listener(config_.host, config_.admin_port, admin_fd_,
                        &admin_port_);
    if (!err.empty()) {
      listen_fd_.reset();
      if (error != nullptr) *error = "admin " + err;
      return false;
    }
  }
  started_ = true;
  stopping_.store(false, std::memory_order_release);
  acceptor_ = std::thread([this] { acceptor_main(); });
  if (config_.probe_interval_ms != 0) {
    prober_ = std::thread([this] { prober_main(); });
  }
  if (error != nullptr) error->clear();
  return true;
}

void PredictRouter::shutdown() {
  if (!started_) return;
  stopping_.store(true, std::memory_order_release);
  if (acceptor_.joinable()) acceptor_.join();
  if (prober_.joinable()) prober_.join();
  reap_finished(/*all=*/true);
  listen_fd_.reset();
  admin_fd_.reset();
  started_ = false;
}

// ---------------------------------------------------------------------------
// Accept loop (downstream + admin).

void PredictRouter::acceptor_main() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd fds[2];
    nfds_t nfds = 0;
    fds[nfds++] = {listen_fd_.get(), POLLIN, 0};
    if (admin_fd_.valid()) fds[nfds++] = {admin_fd_.get(), POLLIN, 0};
    const int r = ::poll(fds, nfds, kTickMs);
    if (r < 0 && errno != EINTR) break;
    if (r <= 0) {
      reap_finished(/*all=*/false);
      continue;
    }
    if (fds[0].revents & POLLIN) {
      const int fd = ::accept4(listen_fd_.get(), nullptr, nullptr,
                               SOCK_CLOEXEC);
      if (fd >= 0) {
        count(accepted_, nullptr);
        if (active_.load(std::memory_order_relaxed) >=
            config_.max_connections) {
          // Mirror PredictServer's shed contract: one kRetryLater frame,
          // then close. The client backs off and retries.
          count(shed_, ins_ != nullptr ? ins_->shed : nullptr);
          std::vector<std::uint8_t> frame;
          net::encode_response(retry_later_response(), frame);
          send_all(fd, frame.data(), frame.size());
          ::close(fd);
        } else {
          const int one = 1;
          ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
          set_recv_timeout(fd, kTickMs);
          auto conn = std::make_unique<DownConn>();
          conn->fd = fd;
          DownConn* raw = conn.get();
          active_.fetch_add(1, std::memory_order_relaxed);
          {
            std::lock_guard lk(conns_mu_);
            conns_.push_back(std::move(conn));
          }
          raw->thread = std::thread([this, raw] { conn_main(raw); });
        }
      }
    }
    if (nfds > 1 && (fds[1].revents & POLLIN)) {
      const int fd = ::accept4(admin_fd_.get(), nullptr, nullptr,
                               SOCK_CLOEXEC);
      if (fd >= 0) handle_admin(fd);
    }
    reap_finished(/*all=*/false);
  }
}

void PredictRouter::reap_finished(bool all) {
  std::vector<std::unique_ptr<DownConn>> reap;
  {
    std::lock_guard lk(conns_mu_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      if (all || (*it)->done.load(std::memory_order_acquire)) {
        reap.push_back(std::move(*it));
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& c : reap) {
    if (c->thread.joinable()) c->thread.join();
  }
}

// ---------------------------------------------------------------------------
// Downstream connection: blocking read loop, one thread per connection.

void PredictRouter::conn_main(DownConn* c) {
  std::vector<std::uint8_t> in;
  std::vector<std::uint8_t> out;
  std::size_t parsed = 0;  // bytes of `in` already consumed by frames
  net::FrameParser parser(config_.max_frame_bytes);
  std::uint8_t chunk[kReadChunkBytes];
  bool close_conn = false;

  while (!close_conn && !stopping_.load(std::memory_order_acquire)) {
    const ssize_t n = ::read(c->fd, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;  // SO_RCVTIMEO tick: re-check the stop flag
      }
      break;
    }
    if (n == 0) break;  // client closed
    in.insert(in.end(), chunk, chunk + n);

    for (;;) {
      const auto frame = parser.next(
          std::span<const std::uint8_t>(in).subspan(parsed));
      if (frame.result == net::FrameParser::Result::kNeedMore) break;
      if (frame.result == net::FrameParser::Result::kBad) {
        // Mirror the server: answer kBadRequest, then close after flush.
        count(protocol_errors_,
              ins_ != nullptr ? ins_->protocol_errors : nullptr);
        net::WireResponse bad;
        bad.status = net::Status::kBadRequest;
        out.clear();
        net::encode_response(bad, out);
        send_all(c->fd, out.data(), out.size());
        close_conn = true;
        break;
      }
      const auto whole = std::span<const std::uint8_t>(in).subspan(
          parsed, frame.consumed);
      out.clear();
      const bool keep = handle_frame(whole, frame.body, out);
      if (!out.empty() && !send_all(c->fd, out.data(), out.size())) {
        close_conn = true;
        break;
      }
      if (!keep) {
        close_conn = true;
        break;
      }
      parsed += frame.consumed;
    }
    if (parsed > 0) {
      // Compact the consumed prefix so a pipelining client cannot grow
      // the buffer without bound.
      in.erase(in.begin(),
               in.begin() + static_cast<std::ptrdiff_t>(parsed));
      parsed = 0;
    }
  }
  ::close(c->fd);
  active_.fetch_sub(1, std::memory_order_relaxed);
  c->done.store(true, std::memory_order_release);
}

bool PredictRouter::handle_frame(std::span<const std::uint8_t> frame,
                                 std::span<const std::uint8_t> body,
                                 std::vector<std::uint8_t>& out) {
  const std::uint8_t version = net::frame_version(body);
  if (version == net::kWireVersion) {
    net::WireRequest req;
    const auto derr = net::decode_request(body, req);
    if (!derr.ok()) {
      count(protocol_errors_,
            ins_ != nullptr ? ins_->protocol_errors : nullptr);
      net::WireResponse bad;
      bad.status = net::Status::kBadRequest;
      net::encode_response(bad, out);
      return false;
    }
    count(requests_, ins_ != nullptr ? ins_->requests : nullptr);
    const std::size_t shard = ring_.shard_of(req.client);
    std::vector<std::uint8_t> resp;
    std::string err;
    if (upstreams_[shard]->round_trip(frame, config_.max_frame_bytes, resp,
                                      &err)) {
      out.insert(out.end(), resp.begin(), resp.end());
    } else {
      // Budget spent: degrade this one answer; the connection lives on.
      count(degraded_, nullptr);
      net::encode_response(retry_later_response(), out);
    }
    count(responses_, ins_ != nullptr ? ins_->responses : nullptr);
    return true;
  }
  if (version == net::kWireVersionBatch) {
    std::vector<net::WireRequest> entries;
    const auto derr = net::decode_batch_request(body, entries);
    if (!derr.ok()) {
      count(protocol_errors_,
            ins_ != nullptr ? ins_->protocol_errors : nullptr);
      net::WireResponse bad;
      bad.status = net::Status::kBadRequest;
      net::encode_response(bad, out);
      return false;
    }
    count(batches_, ins_ != nullptr ? ins_->batches : nullptr);
    count(requests_, ins_ != nullptr ? ins_->requests : nullptr,
          entries.size());
    handle_batch(frame, entries, out);
    count(responses_, ins_ != nullptr ? ins_->responses : nullptr,
          entries.size());
    return true;
  }
  // Unknown version byte inside a well-framed body: the server's decoders
  // would answer kBadRequest; match that, close after flush.
  count(protocol_errors_,
        ins_ != nullptr ? ins_->protocol_errors : nullptr);
  net::WireResponse bad;
  bad.status = net::Status::kBadRequest;
  net::encode_response(bad, out);
  return false;
}

void PredictRouter::handle_batch(std::span<const std::uint8_t> frame,
                                 const std::vector<net::WireRequest>& entries,
                                 std::vector<std::uint8_t>& out) {
  const std::uint32_t resp_cap =
      std::max(config_.max_frame_bytes, net::kDefaultMaxBatchFrameBytes);

  // Map entries to shards; detect the single-shard fast path.
  std::vector<std::uint32_t> entry_shard(entries.size());
  bool single = true;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    entry_shard[i] = static_cast<std::uint32_t>(ring_.shard_of(entries[i].client));
    if (entry_shard[i] != entry_shard[0]) single = false;
  }

  if (single) {
    // Whole batch belongs to one shard (the common case under
    // client-disjoint load): forward the frame verbatim and relay the
    // shard's batch response byte-for-byte.
    std::vector<std::uint8_t> resp;
    std::string err;
    if (upstreams_[entry_shard[0]]->round_trip(frame, resp_cap, resp, &err)) {
      out.insert(out.end(), resp.begin(), resp.end());
      return;
    }
    count(degraded_, nullptr, entries.size());
    std::vector<net::WireResponse> slots(entries.size(),
                                         retry_later_response());
    net::encode_batch_response(slots, out);
    return;
  }

  // Mixed batch: split into per-shard sub-batches (entry order within a
  // shard preserved), round-trip each sequentially, reassemble by the
  // original slot. Re-encoding a decoded sub-response is bit-exact, so
  // the reassembled frame matches what one big server would emit.
  std::vector<net::WireResponse> slots(entries.size());
  std::vector<std::uint32_t> shards_in_order;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (std::find(shards_in_order.begin(), shards_in_order.end(),
                  entry_shard[i]) == shards_in_order.end()) {
      shards_in_order.push_back(entry_shard[i]);
    }
  }
  std::vector<net::WireRequest> sub;
  std::vector<std::size_t> sub_slots;
  std::vector<std::uint8_t> sub_frame, resp;
  std::vector<net::WireResponse> sub_resps;
  for (const std::uint32_t s : shards_in_order) {
    sub.clear();
    sub_slots.clear();
    for (std::size_t i = 0; i < entries.size(); ++i) {
      if (entry_shard[i] == s) {
        sub.push_back(entries[i]);
        sub_slots.push_back(i);
      }
    }
    sub_frame.clear();
    net::encode_batch_request(sub, sub_frame);
    std::string err;
    bool ok =
        upstreams_[s]->round_trip(sub_frame, resp_cap, resp, &err);
    if (ok) {
      const auto rbody = std::span<const std::uint8_t>(resp).subspan(
          net::kFrameHeaderBytes);
      ok = net::decode_batch_response(rbody, sub_resps).ok() &&
           sub_resps.size() == sub_slots.size();
    }
    if (ok) {
      for (std::size_t j = 0; j < sub_slots.size(); ++j) {
        slots[sub_slots[j]] = std::move(sub_resps[j]);
      }
    } else {
      // This shard's slice degrades per-slot; the other shards' answers
      // in the same batch are untouched.
      count(degraded_, nullptr, sub_slots.size());
      for (const std::size_t slot : sub_slots) {
        slots[slot] = retry_later_response();
      }
    }
  }
  net::encode_batch_response(slots, out);
}

// ---------------------------------------------------------------------------
// Health prober: per-shard GET /healthz on a cadence.

void PredictRouter::prober_main() {
  while (!stopping_.load(std::memory_order_acquire)) {
    for (std::size_t i = 0; i < upstreams_.size(); ++i) {
      if (stopping_.load(std::memory_order_acquire)) break;
      const auto& ep = upstreams_[i]->endpoint();
      if (ep.admin_port == 0) continue;
      count(probes_, ins_ != nullptr ? ins_->probes : nullptr);
      ShardHealth h;
      std::string err;
      std::string body;
      if (WEBPPM_FAULT_INJECT("cluster.probe")) {
        // Injected probe failure: the shard is fine but this round's
        // probe is lost — the prober must degrade gracefully (keep the
        // breaker state, mark unreachable) without flapping the cluster.
        err = "injected probe failure";
      } else {
        body = net::fetch_admin(ep.host, ep.admin_port, "/healthz", &err);
      }
      if (err.empty() && net::parse_healthz(body, h.info)) {
        h.reachable = true;
        upstreams_[i]->note_probe(h.info.serving());
      } else {
        count(probe_failures_,
              ins_ != nullptr ? ins_->probe_failures : nullptr);
      }
      {
        std::lock_guard lk(health_mu_);
        health_[i] = h;
      }
    }
    refresh_gauges();
    const std::uint64_t deadline = now_ms() + config_.probe_interval_ms;
    while (!stopping_.load(std::memory_order_acquire) &&
           now_ms() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(
          std::min<std::uint64_t>(20, config_.probe_interval_ms)));
    }
  }
}

PredictRouter::ShardHealth PredictRouter::shard_health(
    std::size_t shard) const {
  std::lock_guard lk(health_mu_);
  return health_[shard];
}

std::uint64_t PredictRouter::version_skew() const {
  std::uint64_t lo = ~0ull, hi = 0;
  std::size_t seen = 0;
  std::lock_guard lk(health_mu_);
  for (const auto& h : health_) {
    if (!h.reachable || !h.info.serving()) continue;
    lo = std::min(lo, h.info.version);
    hi = std::max(hi, h.info.version);
    ++seen;
  }
  return seen >= 2 ? hi - lo : 0;
}

void PredictRouter::refresh_gauges() {
  std::int64_t serving = 0;
  {
    std::lock_guard lk(health_mu_);
    for (const auto& h : health_) {
      if (h.reachable && h.info.serving()) ++serving;
    }
  }
  std::int64_t open = 0;
  for (const auto& u : upstreams_) {
    if (u->breaker_open()) ++open;
  }
  if (ins_ != nullptr) {
    if (ins_->version_skew != nullptr) {
      ins_->version_skew->set(static_cast<std::int64_t>(version_skew()));
    }
    if (ins_->shards_serving != nullptr) ins_->shards_serving->set(serving);
    if (ins_->breakers_open != nullptr) ins_->breakers_open->set(open);
  }
}

// ---------------------------------------------------------------------------
// Admin listener (text): GET /metrics, /healthz, /cluster.

void PredictRouter::handle_admin(int fd) {
  set_recv_timeout(fd, 1000);
  std::string in;
  char buf[1024];
  while (in.find("\r\n\r\n") == std::string::npos &&
         in.size() <= kAdminRequestCapBytes) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    in.append(buf, static_cast<std::size_t>(n));
  }
  if (in.find("\r\n\r\n") != std::string::npos) {
    const std::string resp = admin_response(in.substr(0, in.find("\r\n")));
    send_all(fd, reinterpret_cast<const std::uint8_t*>(resp.data()),
             resp.size());
  }
  ::close(fd);
}

std::string PredictRouter::admin_response(const std::string& request_line) {
  std::string body;
  std::string status = "200 OK";
  const bool get = request_line.rfind("GET ", 0) == 0;
  const std::string path =
      get ? request_line.substr(4, request_line.find(' ', 4) - 4) : "";
  if (!get) {
    status = "400 Bad Request";
    body = "only GET is supported\n";
  } else if (path == "/metrics") {
    if (config_.metrics == nullptr) {
      status = "503 Service Unavailable";
      body = "no metrics registry attached\n";
    } else {
      refresh_gauges();
      body = config_.metrics->prometheus_text();
    }
  } else if (path == "/healthz") {
    // The router serves no snapshot itself; its health is "can it route".
    std::size_t reachable = 0;
    {
      std::lock_guard lk(health_mu_);
      for (const auto& h : health_) {
        if (h.reachable && h.info.serving()) ++reachable;
      }
    }
    if (stopping_.load(std::memory_order_acquire)) {
      status = "503 Service Unavailable";
      body = "draining\n";
    } else if (config_.probe_interval_ms != 0 && reachable == 0) {
      status = "503 Service Unavailable";
      body = "no-shards\n";
    } else if (config_.probe_interval_ms != 0 &&
               reachable < upstreams_.size()) {
      body = "degraded\n";  // routing, but some shards are out: 200
    } else {
      body = "ok\n";
    }
    body.append("shards ").append(std::to_string(upstreams_.size()));
    body.append("\nserving ").append(std::to_string(reachable));
    body.append("\nversion_skew ").append(std::to_string(version_skew()));
    body.append("\n");
  } else if (path == "/cluster") {
    // One line per shard: state the supervisor and a human both read.
    // Skew first — version_skew() takes health_mu_ itself.
    const std::uint64_t skew = version_skew();
    std::lock_guard lk(health_mu_);
    for (std::size_t i = 0; i < upstreams_.size(); ++i) {
      const auto& u = *upstreams_[i];
      const auto& h = health_[i];
      body.append("shard ").append(std::to_string(i));
      body.append(" endpoint ")
          .append(u.endpoint().host)
          .append(":")
          .append(std::to_string(u.endpoint().port));
      body.append(" state ").append(
          !h.reachable ? "unreachable"
                       : (h.info.state.empty() ? "unknown" : h.info.state));
      body.append(" version ").append(std::to_string(h.info.version));
      body.append(" breaker ").append(u.breaker_open() ? "open" : "closed");
      body.append(" admitting ").append(u.admitting() ? "1" : "0");
      body.append(" retries ")
          .append(std::to_string(
              u.counters().retries.load(std::memory_order_relaxed)));
      body.append(" give_ups ")
          .append(std::to_string(
              u.counters().give_ups.load(std::memory_order_relaxed)));
      body.append("\n");
    }
    body.append("version_skew ").append(std::to_string(skew));
    body.append("\n");
  } else {
    status = "404 Not Found";
    body = "unknown path " + path + "\n";
  }
  std::string resp = "HTTP/1.0 " + status +
                     "\r\nContent-Type: text/plain; version=0.0.4\r\n"
                     "Content-Length: " +
                     std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n";
  resp += body;
  return resp;
}

}  // namespace webppm::cluster
