// webppm::obs — low-overhead metrics primitives shared by the serving,
// sweep and simulation layers.
//
// Design constraints (DESIGN.md §8):
//   * Counters are per-thread-sharded: each shard is one cache-line-padded
//     relaxed atomic and a thread always hits the same shard, so
//     instrumenting a concurrent hot path (ModelServer::query) adds one
//     uncontended fetch_add — no shared cache line, no fence.
//   * Histograms are fixed log2 buckets over uint64 values (nanoseconds for
//     latencies): record() is a few relaxed RMWs; quantiles (p50/p90/p99)
//     are computed at exposition time from a snapshot.
//   * The registry hands out stable references; name lookup takes a mutex
//     and is meant for setup time — hot paths cache the returned reference.
//   * Exposition is pull-based: write_prometheus / write_json serialize a
//     relaxed per-cell snapshot (monitoring-grade consistency, no locks on
//     the recording side).
//
// Disabling: metrics are off at runtime by not attaching a registry — every
// instrumented path gates on a null pointer test. The WEBPPM_TRACE span
// macro (trace_event.hpp) additionally compiles to nothing under
// -DWEBPPM_OBS_DISABLED.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace webppm::obs {

inline constexpr std::size_t kCacheLineBytes = 64;
inline constexpr std::size_t kCounterShards = 16;

/// Monotonic nanoseconds since the first call in this process. One vDSO
/// clock read; safe from any thread.
std::uint64_t now_ns() noexcept;

namespace detail {
/// Stable per-thread shard index, assigned round-robin on first use so
/// concurrent recorders spread over the shard array.
std::size_t this_thread_slot() noexcept;
}  // namespace detail

/// Monotonic counter, sharded across cache-line-padded relaxed atomics.
/// add() never contends with another thread's add(); value() sums shards.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    slots_[detail::this_thread_slot()].v.fetch_add(n,
                                                   std::memory_order_relaxed);
  }

  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& s : slots_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(kCacheLineBytes) Slot {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Slot, kCounterShards> slots_{};
};

/// Last-writer-wins instantaneous value (signed: depths, deltas, versions).
class Gauge {
 public:
  void set(std::int64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  void sub(std::int64_t n) noexcept {
    v_.fetch_sub(n, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Bucket count of LogHistogram: bucket i holds values with bit_width == i,
/// i.e. bucket 0 = {0} and bucket i = [2^(i-1), 2^i) for i >= 1, up to
/// bit_width 64.
inline constexpr std::size_t kHistogramBuckets = 65;

/// Immutable point-in-time copy of a LogHistogram; quantile math lives here
/// so tests can check it against a scalar oracle without atomics involved.
struct HistogramSnapshot {
  std::array<std::uint64_t, kHistogramBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;

  /// Bucket-resolution quantile: rank r = max(1, ceil(q * count)); the
  /// bucket where the cumulative count reaches r is linearly interpolated
  /// between its bounds. Returns 0 for an empty histogram.
  double quantile(double q) const;

  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

/// Fixed log2-bucket histogram of uint64 samples (typically nanoseconds).
/// record() is wait-free (relaxed fetch_adds plus a CAS loop for max);
/// readers take relaxed snapshots.
class LogHistogram {
 public:
  static std::size_t bucket_index(std::uint64_t v) noexcept {
    return static_cast<std::size_t>(std::bit_width(v));
  }
  static std::uint64_t bucket_lower(std::size_t i) noexcept {
    return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
  }
  /// Exclusive upper bound (saturated for the top bucket).
  static std::uint64_t bucket_upper(std::size_t i) noexcept {
    if (i == 0) return 1;
    if (i >= kHistogramBuckets - 1)
      return std::numeric_limits<std::uint64_t>::max();
    return std::uint64_t{1} << i;
  }

  void record(std::uint64_t v) noexcept {
    buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    std::uint64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  HistogramSnapshot snapshot() const noexcept {
    HistogramSnapshot s;
    for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
      s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    }
    s.count = count_.load(std::memory_order_relaxed);
    s.sum = sum_.load(std::memory_order_relaxed);
    s.max = max_.load(std::memory_order_relaxed);
    return s;
  }

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// Named metric directory. Registration is idempotent (same name returns
/// the same object) and the returned references are stable for the
/// registry's lifetime. A name must keep one kind — registering
/// "x" as both a counter and a gauge is a programming error (asserted).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  LogHistogram& histogram(std::string_view name);

  /// Lookup without registering; nullptr when absent or of another kind.
  const Counter* find_counter(std::string_view name) const;
  const Gauge* find_gauge(std::string_view name) const;
  const LogHistogram* find_histogram(std::string_view name) const;

  /// Prometheus text exposition format. Histograms use integer-nanosecond
  /// `le` bounds (name the metric *_ns) with cumulative bucket counts.
  void write_prometheus(std::ostream& os) const;
  std::string prometheus_text() const;

  /// JSON dump: {"counters": {...}, "gauges": {...}, "histograms": {...}}
  /// with per-histogram count/sum/max/p50/p90/p99 and non-empty buckets.
  void write_json(std::ostream& os) const;
  std::string json_text() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<LogHistogram> histogram;
  };

  Entry& entry(std::string_view name, Kind kind);
  const Entry* find(std::string_view name, Kind kind) const;

  mutable std::mutex mu_;
  // std::map: exposition iterates in name order, making output
  // deterministic for golden tests; Entry holds the metric behind a
  // unique_ptr so references never move.
  std::map<std::string, Entry, std::less<>> metrics_;
};

/// Process-wide default registry (created on first use). Modules accept an
/// explicit registry pointer; this is the conventional one for tools that
/// want everything in one place.
MetricsRegistry& registry();

}  // namespace webppm::obs
