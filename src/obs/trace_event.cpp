#include "obs/trace_event.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <deque>
#include <memory>
#include <mutex>
#include <ostream>

namespace webppm::obs {
namespace {

std::atomic<bool> g_tracing{false};

/// One thread's ring plus the lock that lets the exporter read it while the
/// owner keeps pushing. Owned by the global table so the ring outlives its
/// thread (a finished worker's spans stay exportable).
struct ThreadRing {
  std::mutex mu;
  TraceRing ring;
  std::uint32_t tid = 0;
};

struct RingTable {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadRing>> rings;
  std::uint32_t next_tid = 1;
};

RingTable& ring_table() {
  static RingTable* table = new RingTable;  // leaked: threads may outlive
                                            // static destruction order
  return *table;
}

ThreadRing& this_thread_ring() {
  static thread_local ThreadRing* ring = [] {
    auto owned = std::make_unique<ThreadRing>();
    ThreadRing* raw = owned.get();
    auto& table = ring_table();
    std::lock_guard lock(table.mu);
    raw->tid = table.next_tid++;
    table.rings.push_back(std::move(owned));
    return raw;
  }();
  return *ring;
}

struct EventLog {
  std::mutex mu;
  std::deque<LoggedEvent> events;
};

EventLog& event_log() {
  static EventLog* log = new EventLog;
  return *log;
}

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kInfo: return "info";
    case Severity::kWarn: return "warn";
    case Severity::kError: return "error";
  }
  return "unknown";
}

void write_json_escaped(std::ostream& os, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default: os << c;
    }
  }
}

}  // namespace

bool tracing_enabled() noexcept {
  return g_tracing.load(std::memory_order_relaxed);
}

void set_tracing_enabled(bool on) noexcept {
  g_tracing.store(on, std::memory_order_relaxed);
}

void TraceSpan::finish() {
  const TraceEvent e{name_, start_, now_ns() - start_};
  auto& tr = this_thread_ring();
  std::lock_guard lock(tr.mu);
  tr.ring.push(e);
}

void write_chrome_trace(std::ostream& os) {
  struct Row {
    TraceEvent event;
    std::uint32_t tid;
  };
  std::vector<Row> rows;
  {
    auto& table = ring_table();
    std::lock_guard lock(table.mu);
    for (const auto& tr : table.rings) {
      std::lock_guard ring_lock(tr->mu);
      for (const auto& e : tr->ring.snapshot()) {
        rows.push_back({e, tr->tid});
      }
    }
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.event.start_ns < b.event.start_ns;
  });

  os << "{\"traceEvents\": [";
  char buf[160];  // fixed row text (~45) + two %.3f of up to ~25 chars each
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& [e, tid] = rows[i];
    os << (i == 0 ? "\n" : ",\n") << R"({"name": ")";
    write_json_escaped(os, e.name);
    std::snprintf(buf, sizeof buf,
                  R"(", "ph": "X", "pid": 1, "tid": %u, "ts": %.3f, )"
                  R"("dur": %.3f})",
                  tid, static_cast<double>(e.start_ns) / 1000.0,
                  static_cast<double>(e.dur_ns) / 1000.0);
    os << buf;
  }
  os << "\n]}\n";
}

void clear_trace() {
  auto& table = ring_table();
  std::lock_guard lock(table.mu);
  for (const auto& tr : table.rings) {
    std::lock_guard ring_lock(tr->mu);
    tr->ring.clear();
  }
}

void log_event(Severity severity, std::string_view name,
               std::string_view message) {
  auto& log = event_log();
  std::lock_guard lock(log.mu);
  log.events.push_back(
      {severity, now_ns(), std::string(name), std::string(message)});
  while (log.events.size() > kMaxLoggedEvents) log.events.pop_front();
}

std::vector<LoggedEvent> recent_events() {
  auto& log = event_log();
  std::lock_guard lock(log.mu);
  return {log.events.begin(), log.events.end()};
}

void clear_events() {
  auto& log = event_log();
  std::lock_guard lock(log.mu);
  log.events.clear();
}

void write_events_json(std::ostream& os) {
  const auto events = recent_events();
  os << "[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto& e = events[i];
    os << (i == 0 ? "\n" : ",\n") << R"({"severity": ")"
       << severity_name(e.severity) << R"(", "ts_ns": )" << e.ts_ns
       << R"(, "name": ")";
    write_json_escaped(os, e.name);
    os << R"(", "message": ")";
    write_json_escaped(os, e.message);
    os << "\"}";
  }
  os << "\n]\n";
}

}  // namespace webppm::obs
