#include "obs/metrics.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace webppm::obs {

std::uint64_t now_ns() noexcept {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point t0 = Clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0)
          .count());
}

namespace detail {

std::size_t this_thread_slot() noexcept {
  static std::atomic<std::size_t> next{0};
  static thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kCounterShards;
  return slot;
}

}  // namespace detail

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  const double clamped = q < 0.0 ? 0.0 : (q > 1.0 ? 1.0 : q);
  auto rank = static_cast<std::uint64_t>(
      std::ceil(clamped * static_cast<double>(count)));
  if (rank == 0) rank = 1;
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    cum += buckets[i];
    if (cum >= rank) {
      const auto lo = static_cast<double>(LogHistogram::bucket_lower(i));
      // Cap at the observed max: the max lives in the highest non-empty
      // bucket, so this only tightens the bound there (and keeps the top
      // bucket's 2^64 edge from stretching the interpolation).
      const double hi = std::min(static_cast<double>(LogHistogram::bucket_upper(i)),
                                 static_cast<double>(max));
      const auto within = static_cast<double>(rank - (cum - buckets[i]));
      return lo + (hi - lo) * within / static_cast<double>(buckets[i]);
    }
  }
  return static_cast<double>(max);  // unreachable: cum == count >= rank
}

MetricsRegistry::Entry& MetricsRegistry::entry(std::string_view name,
                                               Kind kind) {
  std::lock_guard lock(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry e;
    e.kind = kind;
    switch (kind) {
      case Kind::kCounter: e.counter = std::make_unique<Counter>(); break;
      case Kind::kGauge: e.gauge = std::make_unique<Gauge>(); break;
      case Kind::kHistogram:
        e.histogram = std::make_unique<LogHistogram>();
        break;
    }
    it = metrics_.emplace(std::string(name), std::move(e)).first;
  }
  assert(it->second.kind == kind && "metric re-registered as another kind");
  return it->second;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  return *entry(name, Kind::kCounter).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  return *entry(name, Kind::kGauge).gauge;
}

LogHistogram& MetricsRegistry::histogram(std::string_view name) {
  return *entry(name, Kind::kHistogram).histogram;
}

const MetricsRegistry::Entry* MetricsRegistry::find(std::string_view name,
                                                    Kind kind) const {
  std::lock_guard lock(mu_);
  const auto it = metrics_.find(name);
  if (it == metrics_.end() || it->second.kind != kind) return nullptr;
  return &it->second;
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  const auto* e = find(name, Kind::kCounter);
  return e ? e->counter.get() : nullptr;
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name) const {
  const auto* e = find(name, Kind::kGauge);
  return e ? e->gauge.get() : nullptr;
}

const LogHistogram* MetricsRegistry::find_histogram(
    std::string_view name) const {
  const auto* e = find(name, Kind::kHistogram);
  return e ? e->histogram.get() : nullptr;
}

namespace {

/// Shortest round-trippable representation for quantile doubles in JSON.
std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

void MetricsRegistry::write_prometheus(std::ostream& os) const {
  std::lock_guard lock(mu_);
  for (const auto& [name, e] : metrics_) {
    switch (e.kind) {
      case Kind::kCounter:
        os << "# TYPE " << name << " counter\n"
           << name << ' ' << e.counter->value() << '\n';
        break;
      case Kind::kGauge:
        os << "# TYPE " << name << " gauge\n"
           << name << ' ' << e.gauge->value() << '\n';
        break;
      case Kind::kHistogram: {
        const auto s = e.histogram->snapshot();
        os << "# TYPE " << name << " histogram\n";
        std::size_t top = 0;  // highest non-empty bucket
        for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
          if (s.buckets[i] != 0) top = i;
        }
        std::uint64_t cum = 0;
        for (std::size_t i = 0; s.count != 0 && i <= top; ++i) {
          cum += s.buckets[i];
          os << name << "_bucket{le=\"" << LogHistogram::bucket_upper(i)
             << "\"} " << cum << '\n';
        }
        os << name << "_bucket{le=\"+Inf\"} " << s.count << '\n'
           << name << "_sum " << s.sum << '\n'
           << name << "_count " << s.count << '\n';
        break;
      }
    }
  }
}

void MetricsRegistry::write_json(std::ostream& os) const {
  std::lock_guard lock(mu_);
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, e] : metrics_) {
    if (e.kind != Kind::kCounter) continue;
    os << (first ? "" : ",") << "\n    \"" << name
       << "\": " << e.counter->value();
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, e] : metrics_) {
    if (e.kind != Kind::kGauge) continue;
    os << (first ? "" : ",") << "\n    \"" << name
       << "\": " << e.gauge->value();
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, e] : metrics_) {
    if (e.kind != Kind::kHistogram) continue;
    const auto s = e.histogram->snapshot();
    os << (first ? "" : ",") << "\n    \"" << name << "\": {\"count\": "
       << s.count << ", \"sum\": " << s.sum << ", \"max\": " << s.max
       << ", \"p50\": " << format_double(s.quantile(0.50))
       << ", \"p90\": " << format_double(s.quantile(0.90))
       << ", \"p99\": " << format_double(s.quantile(0.99)) << ", \"buckets\": [";
    bool bfirst = true;
    for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
      if (s.buckets[i] == 0) continue;
      os << (bfirst ? "" : ", ") << '[' << LogHistogram::bucket_upper(i)
         << ", " << s.buckets[i] << ']';
      bfirst = false;
    }
    os << "]}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
}

std::string MetricsRegistry::prometheus_text() const {
  std::ostringstream ss;
  write_prometheus(ss);
  return ss.str();
}

std::string MetricsRegistry::json_text() const {
  std::ostringstream ss;
  write_json(ss);
  return ss.str();
}

MetricsRegistry& registry() {
  static MetricsRegistry reg;
  return reg;
}

}  // namespace webppm::obs
