// Structured event tracing: WEBPPM_TRACE scoped spans collected into
// per-thread ring buffers, exportable as Chrome trace_event JSON
// (chrome://tracing, Perfetto), plus a small bounded log of structured
// warning/error events (the "leak canary" channel).
//
// Cost model: with tracing disabled (the default) a span is one relaxed
// atomic load and a branch; enabled, it is two clock reads and a
// mutex-guarded ring push on span exit. Rings are fixed-size and overwrite
// the oldest events, so tracing never allocates after a thread's first
// span and never blocks on a consumer.
//
// Building with -DWEBPPM_OBS_DISABLED compiles WEBPPM_TRACE to nothing.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace webppm::obs {

inline constexpr std::size_t kDefaultTraceRingCapacity = 4096;

/// One completed span. `name` must point at static storage (the macro
/// passes string literals); events are POD so ring pushes never allocate.
struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
};

/// Fixed-capacity overwrite-oldest event buffer. Not thread-safe by
/// itself — the per-thread rings behind WEBPPM_TRACE guard each ring with
/// its own mutex (span exit from the owner, snapshot from the exporter).
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity = kDefaultTraceRingCapacity)
      : ring_(capacity == 0 ? 1 : capacity) {}

  void push(const TraceEvent& e) {
    ring_[static_cast<std::size_t>(pushed_ % ring_.size())] = e;
    ++pushed_;
  }

  /// Retained events, oldest first (at most capacity()).
  std::vector<TraceEvent> snapshot() const {
    const auto cap = static_cast<std::uint64_t>(ring_.size());
    const std::uint64_t n = pushed_ < cap ? pushed_ : cap;
    std::vector<TraceEvent> out;
    out.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = pushed_ - n; i < pushed_; ++i) {
      out.push_back(ring_[static_cast<std::size_t>(i % cap)]);
    }
    return out;
  }

  void clear() { pushed_ = 0; }
  std::size_t capacity() const { return ring_.size(); }
  std::uint64_t pushed() const { return pushed_; }

 private:
  std::vector<TraceEvent> ring_;
  std::uint64_t pushed_ = 0;  ///< total pushes; head = pushed_ % capacity
};

bool tracing_enabled() noexcept;
void set_tracing_enabled(bool on) noexcept;

/// RAII span: records [construction, destruction) into this thread's ring
/// when tracing is enabled. Use via WEBPPM_TRACE("name").
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) noexcept
      : name_(tracing_enabled() ? name : nullptr),
        start_(name_ != nullptr ? now_ns() : 0) {}
  ~TraceSpan() {
    if (name_ != nullptr) finish();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  void finish();

  const char* name_;
  std::uint64_t start_;
};

/// All rings' retained events as a Chrome trace_event JSON document
/// ({"traceEvents": [...]}; ts/dur in microseconds), sorted by start time.
void write_chrome_trace(std::ostream& os);

/// Drops every ring's retained events (rings themselves persist).
void clear_trace();

// ---------------------------------------------------------------------------
// Structured events: a bounded in-memory log for rare, noteworthy
// conditions (snapshot-generation leaks, failed pool tasks). Never the hot
// path — each call takes a global mutex.

enum class Severity { kInfo, kWarn, kError };

struct LoggedEvent {
  Severity severity = Severity::kInfo;
  std::uint64_t ts_ns = 0;
  std::string name;     ///< stable dotted identifier, e.g. "serve.snapshot_leak"
  std::string message;  ///< human-readable details
};

inline constexpr std::size_t kMaxLoggedEvents = 256;

void log_event(Severity severity, std::string_view name,
               std::string_view message);

/// Retained events, oldest first (at most kMaxLoggedEvents).
std::vector<LoggedEvent> recent_events();
void clear_events();

/// JSON array of the retained events.
void write_events_json(std::ostream& os);

}  // namespace webppm::obs

#ifdef WEBPPM_OBS_DISABLED
#define WEBPPM_TRACE(name) static_cast<void>(0)
#else
#define WEBPPM_OBS_CONCAT2(a, b) a##b
#define WEBPPM_OBS_CONCAT(a, b) WEBPPM_OBS_CONCAT2(a, b)
#define WEBPPM_TRACE(name)                                         \
  ::webppm::obs::TraceSpan WEBPPM_OBS_CONCAT(webppm_trace_span_, \
                                             __LINE__)(name)
#endif
