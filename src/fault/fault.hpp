// webppm::fault — deterministic, seeded fault injection for chaos testing
// the serving path (DESIGN.md §9).
//
// A *fault site* is a named point in production code where a failure can be
// scripted:
//
//   if (WEBPPM_FAULT_INJECT("serve.snapshot.write")) {
//     return io_error("snapshot write failed");
//   }
//
// A *plan* is a list of rules, each bound to a site by exact name: fire on
// the Nth hit, fire with probability p (from an Rng seeded by the plan, so
// a plan replays identically), inject latency before proceeding, and fail
// either by returning true from the site (the caller takes its error path)
// or by throwing fault::FaultInjected. Plans are armed process-wide
// (arm/disarm) — arming is a test/chaos-time operation, never part of
// production configuration.
//
// Cost model (mirrors the obs layer):
//   * WEBPPM_FAULT_DISABLED compiles every site to the constant `false`:
//     the hot path is byte-identical to a build without the framework.
//   * Enabled but disarmed: one relaxed atomic load and a branch per hit.
//   * Armed but no rule for the site: the site binds to "no rules" once per
//     plan (epoch check) and then pays two relaxed loads and a null check —
//     the serve_throughput bench gates this idle cost at < 3%.
//   * Armed with matching rules: a per-rule mutex serialises hit counting so
//     "fail the Nth hit" is exact even under concurrency.
//
// Plan states are retained until process exit (arming happens O(tests)
// times); retaining them lets sites cache rule bindings without any
// reclamation protocol on the hot path.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace webppm::fault {

/// Thrown by a site whose matched rule uses Mode::kThrow. The message names
/// the site, so chaos tests can assert which site blew up.
class FaultInjected : public std::runtime_error {
 public:
  explicit FaultInjected(const std::string& site)
      : std::runtime_error("fault injected at " + site) {}
};

/// What a firing rule does to the calling operation.
enum class Mode : std::uint8_t {
  kErrorReturn,  ///< site returns true; caller takes its error path
  kThrow,        ///< site throws FaultInjected
  kDelayOnly,    ///< only the injected latency; operation proceeds
};

/// One scripted failure. Every hit of the site advances `skip`/`times`
/// bookkeeping; a rule fires on hits (skip, skip + times] that also pass
/// the probability draw.
struct Rule {
  std::string site;       ///< exact fault-site name
  std::uint64_t skip = 0; ///< let this many hits pass before firing
  std::uint64_t times = std::uint64_t(-1);  ///< fire at most this many times
  double probability = 1.0;  ///< chance an eligible hit fires (seeded)
  std::uint64_t delay_ns = 0;  ///< latency injected when the rule fires
  Mode mode = Mode::kErrorReturn;
};

/// A scripted fault plan: rules plus the seed that makes probabilistic
/// rules replayable. Built with the fluent helpers or by pushing Rules.
struct Plan {
  std::uint64_t seed = 1;
  std::vector<Rule> rules;

  /// Fail every hit of `site` (error-return).
  Plan& fail(std::string site) {
    rules.push_back({std::move(site), 0, std::uint64_t(-1), 1.0, 0,
                     Mode::kErrorReturn});
    return *this;
  }
  /// Fail hits (skip, skip + times] of `site` (error-return). skip = 2,
  /// times = 1 fails exactly the third hit.
  Plan& fail_nth(std::string site, std::uint64_t skip,
                 std::uint64_t times = 1) {
    rules.push_back(
        {std::move(site), skip, times, 1.0, 0, Mode::kErrorReturn});
    return *this;
  }
  /// Fail each hit of `site` independently with probability `p`.
  Plan& fail_with_probability(std::string site, double p) {
    rules.push_back(
        {std::move(site), 0, std::uint64_t(-1), p, 0, Mode::kErrorReturn});
    return *this;
  }
  /// Throw FaultInjected on hits (skip, skip + times] of `site`.
  Plan& throw_nth(std::string site, std::uint64_t skip = 0,
                  std::uint64_t times = 1) {
    rules.push_back({std::move(site), skip, times, 1.0, 0, Mode::kThrow});
    return *this;
  }
  /// Inject `delay_ns` of latency into every hit; the operation proceeds.
  Plan& delay(std::string site, std::uint64_t delay_ns) {
    rules.push_back({std::move(site), 0, std::uint64_t(-1), 1.0, delay_ns,
                     Mode::kDelayOnly});
    return *this;
  }
};

/// Installs `plan` process-wide, resetting all hit/fired counters. Replaces
/// any previously armed plan.
void arm(Plan plan);

/// Removes the armed plan; every site falls back to the disarmed fast path.
void disarm();

bool armed() noexcept;

/// Counters for the armed (or most recently armed) plan, aggregated over
/// rules matching `site`. Hits are counted only while a plan with a rule
/// for the site is armed — the disarmed fast path counts nothing.
std::uint64_t hit_count(std::string_view site);
std::uint64_t fired_count(std::string_view site);
/// Total rule firings (any site, any mode) since the last arm().
std::uint64_t total_fired();

/// Attaches a registry: every firing counts webppm_fault_injected_total
/// (and webppm_fault_throws_total for Mode::kThrow). Pass nullptr to
/// detach. The registry must outlive the attachment.
void attach_metrics(obs::MetricsRegistry* registry);

namespace detail {
extern std::atomic<bool> g_armed;           ///< disarmed fast-path gate
extern std::atomic<std::uint64_t> g_epoch;  ///< bumped by arm()/disarm()

struct BoundRules;  ///< per-site slice of the armed plan (fault.cpp)

/// Per-call-site state behind WEBPPM_FAULT_INJECT: caches which rules of
/// the current plan apply to this site so the armed-but-idle path stays
/// lock-free. Function-local static — one per macro expansion.
class Site {
 public:
  explicit Site(const char* name);

  bool check() {
    if (!g_armed.load(std::memory_order_relaxed)) return false;
    const std::uint64_t e = g_epoch.load(std::memory_order_relaxed);
    if (e != bound_epoch_.load(std::memory_order_acquire)) rebind(e);
    const BoundRules* rules = rules_.load(std::memory_order_acquire);
    if (rules == nullptr) return false;
    return evaluate(rules);
  }

 private:
  void rebind(std::uint64_t epoch);
  bool evaluate(const BoundRules* rules);

  const char* name_;
  std::atomic<std::uint64_t> bound_epoch_{std::uint64_t(-1)};
  std::atomic<const BoundRules*> rules_{nullptr};
};
}  // namespace detail

}  // namespace webppm::fault

#ifdef WEBPPM_FAULT_DISABLED
#define WEBPPM_FAULT_INJECT(site) false
#else
/// Evaluates to true when the armed plan fails this hit (error-return
/// mode); may throw fault::FaultInjected or sleep per the matched rule.
/// `site` must be a string literal (it names a function-local static).
#define WEBPPM_FAULT_INJECT(site)                      \
  ([]() -> bool {                                      \
    static ::webppm::fault::detail::Site webppm_site_( \
        site);                                         \
    return webppm_site_.check();                       \
  }())
#endif
