#include "fault/fault.hpp"

#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "util/rng.hpp"

namespace webppm::fault {
namespace detail {

std::atomic<bool> g_armed{false};
std::atomic<std::uint64_t> g_epoch{0};

namespace {

/// Runtime state of one plan rule: scripted parameters plus the hit/fired
/// bookkeeping, serialised by its own mutex so Nth-hit semantics hold under
/// concurrent site hits.
struct RuleState {
  explicit RuleState(Rule r, std::uint64_t seed)
      : rule(std::move(r)), rng(seed) {}
  Rule rule;
  std::mutex mu;
  std::uint64_t hits = 0;
  std::uint64_t fired = 0;
  util::Rng rng;
};

}  // namespace

/// The rules of the armed plan that name one site, in plan order.
struct BoundRules {
  std::vector<RuleState*> rules;
};

namespace {

/// One armed plan's full runtime state. Retained until process exit so
/// sites can hold BoundRules pointers without reclamation (fault.hpp).
struct PlanState {
  std::vector<std::unique_ptr<RuleState>> rules;
  std::map<std::string, BoundRules, std::less<>> by_site;
  std::atomic<std::uint64_t> total_fired{0};
};

std::mutex g_mu;  // guards everything below
std::vector<std::unique_ptr<PlanState>> g_plans;  // all ever armed, retained
PlanState* g_current = nullptr;  // last armed plan (survives disarm for stats)

std::atomic<obs::Counter*> g_injected_counter{nullptr};
std::atomic<obs::Counter*> g_throws_counter{nullptr};

}  // namespace

Site::Site(const char* name) : name_(name) {}

void Site::rebind(std::uint64_t /*epoch*/) {
  std::lock_guard lock(g_mu);
  // Bind against the plan and epoch as they are *now* — a plan swapped in
  // between the caller's epoch read and this lock binds correctly.
  const BoundRules* bound = nullptr;
  if (g_armed.load(std::memory_order_relaxed) && g_current != nullptr) {
    const auto it = g_current->by_site.find(std::string_view(name_));
    if (it != g_current->by_site.end()) bound = &it->second;
  }
  rules_.store(bound, std::memory_order_release);
  bound_epoch_.store(g_epoch.load(std::memory_order_relaxed),
                     std::memory_order_release);
}

bool Site::evaluate(const BoundRules* rules) {
  // Every rule sees every hit of the site — an earlier rule's firing never
  // hides the hit from later rules, so "fail the Nth hit" always means the
  // Nth hit of the *site*. Rules firing on the same hit compose: delays
  // add up and apply before the failure, a throw wins over error-return.
  bool error_return = false;
  bool do_throw = false;
  std::uint64_t delay_ns = 0;
  std::uint64_t fired_n = 0;
  for (RuleState* rs : rules->rules) {
    std::lock_guard lock(rs->mu);
    ++rs->hits;
    const Rule& r = rs->rule;
    const bool eligible = rs->hits > r.skip && rs->fired < r.times;
    const bool fire = eligible && (r.probability >= 1.0 ||
                                   rs->rng.chance(r.probability));
    if (!fire) continue;
    ++rs->fired;
    ++fired_n;
    delay_ns += r.delay_ns;
    if (r.mode == Mode::kThrow) do_throw = true;
    if (r.mode == Mode::kErrorReturn) error_return = true;
  }
  if (fired_n == 0) return false;
  {
    std::lock_guard lock(g_mu);
    if (g_current != nullptr) {
      g_current->total_fired.fetch_add(fired_n, std::memory_order_relaxed);
    }
  }
  if (auto* c = g_injected_counter.load(std::memory_order_relaxed)) {
    c->add(fired_n);
  }
  if (delay_ns != 0) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(delay_ns));
  }
  if (do_throw) {
    if (auto* c = g_throws_counter.load(std::memory_order_relaxed)) {
      c->add();
    }
    throw FaultInjected(name_);
  }
  return error_return;
}

}  // namespace detail

void arm(Plan plan) {
  using namespace detail;
  std::lock_guard lock(g_mu);
  auto state = std::make_unique<PlanState>();
  std::uint64_t sm = plan.seed;
  for (auto& r : plan.rules) {
    // Each rule gets an independent seeded stream so its probability draws
    // do not depend on other rules' hit interleaving.
    state->rules.push_back(
        std::make_unique<RuleState>(std::move(r), util::splitmix64(sm)));
    auto* rs = state->rules.back().get();
    state->by_site[rs->rule.site].rules.push_back(rs);
  }
  g_current = state.get();
  g_plans.push_back(std::move(state));
  g_epoch.fetch_add(1, std::memory_order_relaxed);
  g_armed.store(true, std::memory_order_relaxed);
}

void disarm() {
  using namespace detail;
  std::lock_guard lock(g_mu);
  g_armed.store(false, std::memory_order_relaxed);
  g_epoch.fetch_add(1, std::memory_order_relaxed);
}

bool armed() noexcept {
  return detail::g_armed.load(std::memory_order_relaxed);
}

std::uint64_t hit_count(std::string_view site) {
  using namespace detail;
  std::lock_guard lock(g_mu);
  if (g_current == nullptr) return 0;
  std::uint64_t total = 0;
  const auto it = g_current->by_site.find(site);
  if (it == g_current->by_site.end()) return 0;
  for (RuleState* rs : it->second.rules) {
    std::lock_guard rule_lock(rs->mu);
    total += rs->hits;
  }
  return total;
}

std::uint64_t fired_count(std::string_view site) {
  using namespace detail;
  std::lock_guard lock(g_mu);
  if (g_current == nullptr) return 0;
  std::uint64_t total = 0;
  const auto it = g_current->by_site.find(site);
  if (it == g_current->by_site.end()) return 0;
  for (RuleState* rs : it->second.rules) {
    std::lock_guard rule_lock(rs->mu);
    total += rs->fired;
  }
  return total;
}

std::uint64_t total_fired() {
  using namespace detail;
  std::lock_guard lock(g_mu);
  return g_current == nullptr
             ? 0
             : g_current->total_fired.load(std::memory_order_relaxed);
}

void attach_metrics(obs::MetricsRegistry* registry) {
  using namespace detail;
  if (registry == nullptr) {
    g_injected_counter.store(nullptr, std::memory_order_relaxed);
    g_throws_counter.store(nullptr, std::memory_order_relaxed);
    return;
  }
  g_injected_counter.store(&registry->counter("webppm_fault_injected_total"),
                           std::memory_order_relaxed);
  g_throws_counter.store(&registry->counter("webppm_fault_throws_total"),
                         std::memory_order_relaxed);
}

}  // namespace webppm::fault
