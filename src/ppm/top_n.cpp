#include "ppm/top_n.hpp"

#include <algorithm>
#include <unordered_map>

namespace webppm::ppm {

TopNPredictor::TopNPredictor(const TopNConfig& config) : config_(config) {}

TopNPredictor TopNPredictor::from_popularity(
    const popularity::PopularityTable& table, const TopNConfig& config) {
  TopNPredictor p(config);
  for (UrlId u = 0; u < table.url_count(); ++u) {
    const auto c = table.accesses(u);
    if (c == 0) continue;
    p.counts_[u] = c;
    p.total_ += c;
  }
  p.rebuild_push_set();
  return p;
}

void TopNPredictor::train(std::span<const session::Session> sessions) {
  counts_.clear();
  total_ = 0;
  train_more(sessions);
}

void TopNPredictor::train_more(std::span<const session::Session> sessions) {
  for (const auto& s : sessions) {
    for (const auto u : s.urls) {
      ++counts_[u];
      ++total_;
    }
  }
  rebuild_push_set();
}

void TopNPredictor::rebuild_push_set() {
  std::vector<std::pair<UrlId, std::uint64_t>> ranked(counts_.begin(),
                                                      counts_.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  if (ranked.size() > config_.n) ranked.resize(config_.n);

  push_set_.clear();
  for (const auto& [url, count] : ranked) {
    push_set_.push_back(
        {url, total_ > 0 ? static_cast<float>(static_cast<double>(count) /
                                              static_cast<double>(total_))
                         : 0.0f});
  }
}

void TopNPredictor::predict(std::span<const UrlId> /*context*/,
                            std::vector<Prediction>& out,
                            UsageScratch* usage) const {
  out = push_set_;
  if (usage != nullptr) usage->touched = true;
}

}  // namespace webppm::ppm
