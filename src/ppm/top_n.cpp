#include "ppm/top_n.hpp"

#include <algorithm>
#include <unordered_map>

namespace webppm::ppm {

TopNPredictor::TopNPredictor(const TopNConfig& config) : config_(config) {}

void TopNPredictor::train(std::span<const session::Session> sessions) {
  std::unordered_map<UrlId, std::uint64_t> counts;
  std::uint64_t total = 0;
  for (const auto& s : sessions) {
    for (const auto u : s.urls) {
      ++counts[u];
      ++total;
    }
  }
  std::vector<std::pair<UrlId, std::uint64_t>> ranked(counts.begin(),
                                                      counts.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  if (ranked.size() > config_.n) ranked.resize(config_.n);

  push_set_.clear();
  for (const auto& [url, count] : ranked) {
    push_set_.push_back(
        {url, total > 0 ? static_cast<float>(static_cast<double>(count) /
                                             static_cast<double>(total))
                        : 0.0f});
  }
}

void TopNPredictor::predict(std::span<const UrlId> /*context*/,
                            std::vector<Prediction>& out) {
  out = push_set_;
  used_ = true;
}

}  // namespace webppm::ppm
