#include "ppm/predictor.hpp"

#include <algorithm>

namespace webppm::ppm {

MatchResult longest_match(const PredictionTree& tree,
                          std::span<const UrlId> context,
                          std::size_t max_context, MatchPolicy policy) {
  const std::size_t longest = std::min(context.size(), max_context);
  for (std::size_t k = longest; k >= 1; --k) {
    const auto suffix = context.subspan(context.size() - k);
    const NodeId n = tree.find_path(suffix);
    if (n == kNoNode) continue;  // longer suffix unseen; try shorter
    if (!tree.node(n).children.empty()) return {n, k};
    if (policy == MatchPolicy::kStrict) return {};  // leaf: cannot predict
  }
  return {};
}

void emit_children(const PredictionTree& tree, NodeId node, double threshold,
                   std::vector<Prediction>& out, UsageScratch* usage) {
  const auto parent_count = static_cast<double>(tree.node(node).count);
  if (parent_count <= 0.0) return;
  tree.node(node).children.for_each([&](UrlId url, NodeId child) {
    const double p = static_cast<double>(tree.node(child).count) / parent_count;
    if (p >= threshold) {
      if (usage != nullptr) usage->nodes.push_back(child);
      out.push_back({url, static_cast<float>(p)});
    }
  });
}

void finalize_predictions(std::vector<Prediction>& out) {
  std::sort(out.begin(), out.end(), [](const Prediction& a, const Prediction& b) {
    return a.url != b.url ? a.url < b.url : a.probability > b.probability;
  });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const Prediction& a, const Prediction& b) {
                          return a.url == b.url;
                        }),
            out.end());
  std::sort(out.begin(), out.end(), [](const Prediction& a, const Prediction& b) {
    return a.probability != b.probability ? a.probability > b.probability
                                          : a.url < b.url;
  });
}

}  // namespace webppm::ppm
