#include "ppm/lrs_ppm.hpp"

#include <cassert>

namespace webppm::ppm {

LrsPpm::LrsPpm(const LrsPpmConfig& config) : config_(config) {
  assert(config_.min_support >= 1);
}

void LrsPpm::train(std::span<const session::Session> sessions) {
  support_ = PredictionTree{};
  tree_ = PredictionTree{};
  patterns_.clear();
  train_more(sessions);
}

void LrsPpm::train_more(std::span<const session::Session> sessions) {
  // Nothing new to count: the support tree is unchanged, so the derived
  // pattern set and prediction tree would come out identical.
  if (sessions.empty()) return;

  // Phase 1: grow the retained window tree carrying occurrence counts of
  // every subsequence (bounded by max_height if set). Counting is purely
  // additive, so the support tree after N chunks equals the one a single
  // batch pass would build; phases 2-3 re-derive everything from it.
  PredictionTree& support = support_;
  const std::uint32_t h = config_.max_height;
  for (const auto& s : sessions) {
    const auto& u = s.urls;
    for (std::size_t i = 0; i < u.size(); ++i) {
      NodeId cur = support.root_or_add(u[i]);
      for (std::size_t j = i + 1;
           j < u.size() && (h == 0 || j - i + 1 <= h); ++j) {
        cur = support.child_or_add(cur, u[j]);
      }
    }
  }

  // Phase 2: extract maximal supported paths (the LRS set). A path is
  // supported when every node on it has count >= min_support; it is maximal
  // when no supported extension exists. Single-URL patterns predict nothing
  // and are skipped.
  patterns_.clear();
  std::vector<UrlId> path;
  const std::uint32_t support_min = config_.min_support;

  // Iterative DFS carrying the current path.
  struct Frame {
    NodeId node;
    bool expanded = false;
  };
  for (const auto& [root_url, root_id] : support.roots()) {
    if (support.node(root_id).count < support_min) continue;
    std::vector<Frame> stack{{root_id}};
    path.clear();
    while (!stack.empty()) {
      Frame& f = stack.back();
      if (!f.expanded) {
        f.expanded = true;
        path.push_back(support.node(f.node).url);
        bool has_supported_child = false;
        support.node(f.node).children.for_each([&](UrlId, NodeId c) {
          if (support.node(c).count >= support_min) {
            has_supported_child = true;
            stack.push_back({c});
          }
        });
        if (!has_supported_child && path.size() >= 2) {
          patterns_.push_back(path);
        }
        // Note: children pushed above will be processed before this frame
        // pops; `path` tracks the stack via the pop below.
        if (!has_supported_child) {
          // leaf of the supported subtree: unwind immediately
          path.pop_back();
          stack.pop_back();
        }
      } else {
        // All children of f processed.
        path.pop_back();
        stack.pop_back();
      }
    }
  }

  // Phase 3: rebuild the prediction tree, inserting each LRS and all its
  // suffixes with exact occurrence counts from the support tree (every
  // suffix of a repeating sequence is itself repeating, so the lookups
  // always succeed). Rebuilding from scratch keeps counts exact when a
  // train_more call has raised support counts of already-inserted nodes.
  tree_ = PredictionTree{};
  for (const auto& pattern : patterns_) {
    for (std::size_t off = 0; off + 2 <= pattern.size(); ++off) {
      NodeId support_node = support.find_root(pattern[off]);
      assert(support_node != kNoNode);
      NodeId cur = tree_.find_root(pattern[off]);
      if (cur == kNoNode) {
        cur = tree_.root_or_add(pattern[off], 0);
        tree_.node(cur).count = support.node(support_node).count;
      }
      for (std::size_t j = off + 1; j < pattern.size(); ++j) {
        support_node = support.find_child(support_node, pattern[j]);
        assert(support_node != kNoNode);
        NodeId next = tree_.find_child(cur, pattern[j]);
        if (next == kNoNode) {
          next = tree_.child_or_add(cur, pattern[j], 0);
          tree_.node(next).count = support.node(support_node).count;
        }
        cur = next;
      }
    }
  }
}

void LrsPpm::predict(std::span<const UrlId> context,
                     std::vector<Prediction>& out, UsageScratch* usage) const {
  out.clear();
  const auto m = longest_match(tree_, context, config_.max_context,
                               MatchPolicy::kStrict);
  if (m.node == kNoNode) return;
  if (usage != nullptr) {
    usage->nodes.push_back(m.node);
    usage->touched = true;
  }
  emit_children(tree_, m.node, config_.prob_threshold, out, usage);
  finalize_predictions(out);
}

}  // namespace webppm::ppm
