#include "ppm/popularity_ppm.hpp"

#include <algorithm>
#include <cassert>

namespace webppm::ppm {

PopularityPpm::PopularityPpm(const PopularityPpmConfig& config,
                             const popularity::PopularityTable* grades)
    : config_(config), grades_(grades) {
  assert(grades_ != nullptr);
}

void PopularityPpm::insert_session(const session::Session& s) {
  // Open branches currently being extended by this session.
  struct Open {
    NodeId tip;
    NodeId root;
    int head_grade;
  };
  std::vector<Open> open;
  std::vector<Open> next_open;

  int prev_grade = 0;
  for (std::size_t i = 0; i < s.urls.size(); ++i) {
    const UrlId u = s.urls[i];
    const int g = grades_->grade(u);

    next_open.clear();
    for (const Open& b : open) {
      const auto cap =
          config_.height_by_grade[static_cast<std::size_t>(b.head_grade)];
      if (tree_.node(b.tip).depth >= cap) continue;  // branch is full
      const NodeId child = tree_.child_or_add(b.tip, u);
      next_open.push_back({child, b.root, b.head_grade});
      // Rule 3: special link for a popular URL deeper in the branch
      // ("not immediately following the heading URL" => depth >= 3).
      if (config_.special_links && tree_.node(child).depth >= 3 &&
          (g > b.head_grade || g == popularity::kMaxGrade)) {
        auto& targets = links_[b.root];
        if (std::find(targets.begin(), targets.end(), child) ==
            targets.end()) {
          targets.push_back(child);
        }
      }
    }
    // Rule 2/4: head a new branch at session start or on a grade increase.
    if (i == 0 || g > prev_grade) {
      const NodeId root = tree_.root_or_add(u);
      next_open.push_back({root, root, g});
    }
    open.swap(next_open);
    prev_grade = g;
  }
}

void PopularityPpm::train_without_optimization(
    std::span<const session::Session> sessions) {
  for (const auto& s : sessions) insert_session(s);
  rank_links();
}

void PopularityPpm::rank_links() {
  // Order link targets by traversal count; count ties break on the
  // target's root-to-node URL path (node ids depend on insertion order,
  // which differs between batch and incremental training; the URL path
  // identifies a tree position canonically).
  struct RankedTarget {
    std::uint32_t count;
    std::vector<UrlId> path;
    NodeId node;
  };
  std::vector<RankedTarget> ranked;
  for (auto& [root, targets] : links_) {
    ranked.clear();
    ranked.reserve(targets.size());
    for (const NodeId id : targets) {
      RankedTarget r{tree_.node(id).count, {}, id};
      for (NodeId n = id; n != kNoNode; n = tree_.node(n).parent) {
        r.path.push_back(tree_.node(n).url);
      }
      std::reverse(r.path.begin(), r.path.end());
      ranked.push_back(std::move(r));
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const RankedTarget& a, const RankedTarget& b) {
                return a.count != b.count ? a.count > b.count
                                          : a.path < b.path;
              });
    for (std::size_t i = 0; i < ranked.size(); ++i) {
      targets[i] = ranked[i].node;
    }
  }
  links_ranked_ = true;
}

void PopularityPpm::train(std::span<const session::Session> sessions) {
  train_without_optimization(sessions);
  optimize_space();
}

void PopularityPpm::optimize_space() {
  if (config_.min_relative_probability <= 0.0 &&
      config_.min_absolute_count == 0) {
    if (!links_ranked_) rank_links();
    return;
  }
  // Collect victims root-down; prune_subtree tombstones whole subtrees, so
  // skip nodes that died while we iterate.
  const auto should_cut = [&](NodeId id) {
    const TreeNode& n = tree_.node(id);
    if (n.parent == kNoNode) return false;  // roots are never cut
    if (config_.min_absolute_count > 0 &&
        n.count <= config_.min_absolute_count) {
      return true;
    }
    if (config_.min_relative_probability > 0.0) {
      const auto parent_count =
          static_cast<double>(tree_.node(n.parent).count);
      if (parent_count > 0.0 &&
          static_cast<double>(n.count) / parent_count <
              config_.min_relative_probability) {
        return true;
      }
    }
    return false;
  };

  std::vector<NodeId> stack;
  for (const auto& [url, root] : tree_.roots()) stack.push_back(root);
  // Snapshot iteration: children discovered before any pruning of them.
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    if (tree_.node(id).dead) continue;
    if (should_cut(id)) {
      tree_.prune_subtree(id);
      continue;
    }
    tree_.node(id).children.for_each(
        [&](UrlId, NodeId c) { stack.push_back(c); });
  }

  const auto remap = tree_.compact();
  // Remap special links; drop links to pruned nodes and remap roots.
  std::unordered_map<NodeId, std::vector<NodeId>> fresh;
  for (const auto& [root, targets] : links_) {
    if (remap[root] == kNoNode) continue;
    std::vector<NodeId> alive;
    for (const NodeId t : targets) {
      if (remap[t] != kNoNode) alive.push_back(remap[t]);
    }
    if (!alive.empty()) fresh.emplace(remap[root], std::move(alive));
  }
  links_ = std::move(fresh);
  rank_links();
}

void PopularityPpm::predict(std::span<const UrlId> context,
                            std::vector<Prediction>& out,
                            UsageScratch* usage) const {
  out.clear();
  if (context.empty()) return;
  // Every mutating entry point re-ranks before handing the model out.
  assert(links_ranked_ || links_.empty());

  const auto m = longest_match(tree_, context, config_.max_context);
  if (m.node != kNoNode) {
    if (usage != nullptr) {
      usage->nodes.push_back(m.node);
      usage->touched = true;
    }
    emit_children(tree_, m.node, config_.prob_threshold, out, usage);
  }

  // Rule 3 at prediction time: when the current click is a root, the
  // duplicated popular nodes linked from it become additional predictions.
  if (config_.special_links) {
    const NodeId root = tree_.find_root(context.back());
    if (root != kNoNode) {
      if (const auto it = links_.find(root); it != links_.end()) {
        const auto root_count = static_cast<double>(tree_.node(root).count);
        // Targets are pre-ranked by rank_links(); emit the top k.
        std::span<const NodeId> targets = it->second;
        if (config_.link_top_k > 0 && targets.size() > config_.link_top_k) {
          targets = targets.first(config_.link_top_k);
        }
        for (const NodeId t : targets) {
          const double p = root_count > 0.0
                               ? static_cast<double>(tree_.node(t).count) /
                                     root_count
                               : 0.0;
          if (p >= config_.link_prob_threshold) {
            if (usage != nullptr) {
              usage->nodes.push_back(t);
              usage->touched = true;
            }
            out.push_back({tree_.node(t).url, static_cast<float>(p)});
          }
        }
      }
    }
  }
  finalize_predictions(out);
}

}  // namespace webppm::ppm
