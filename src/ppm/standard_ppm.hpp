// Standard PPM model (paper §3.2, first approach; Palpanas & Mendelzon;
// Fan et al.): a Markov prediction tree that "widely creates branches" —
// every URL occurrence heads a branch, and each branch records the
// subsequent clicks up to a fixed height. Height 0 means unbounded, the
// paper's upper-bound configuration for the standard model's accuracy.
#pragma once

#include <span>
#include <string>

#include "ppm/predictor.hpp"
#include "session/session.hpp"

namespace webppm::ppm {

struct StandardPpmConfig {
  /// Maximum nodes per branch (tree height); 0 = unbounded.
  std::uint32_t max_height = 0;
  /// Minimum conditional probability for a prefetch candidate (paper: 0.25).
  double prob_threshold = 0.25;
  /// Longest context suffix considered when matching.
  std::uint32_t max_context = 16;
};

class StandardPpm final : public Predictor {
 public:
  explicit StandardPpm(const StandardPpmConfig& config = {});

  /// Inserts every height-capped window of every session. Training is
  /// purely additive, so train() on two batches equals train() on their
  /// concatenation; train_more() is the same operation under the name the
  /// incremental sweep engine uses across all models.
  void train(std::span<const session::Session> sessions);
  void train_more(std::span<const session::Session> sessions) {
    train(sessions);
  }

  void predict(std::span<const UrlId> context, std::vector<Prediction>& out,
               UsageScratch* usage = nullptr) const override;
  std::size_t node_count() const override { return tree_.node_count(); }
  std::size_t storage_bytes() const override { return tree_.memory_bytes(); }
  PredictionTree::PathUsage path_usage(
      const UsageScratch& usage) const override {
    return tree_.path_usage(usage.nodes);
  }
  void apply_usage(const UsageScratch& usage) override {
    for (const NodeId id : usage.nodes) tree_.mark_used(id);
  }
  PredictionTree::PathUsage path_usage() const override {
    return tree_.path_usage();
  }
  void clear_usage() override { tree_.clear_usage(); }
  std::string_view name() const override { return name_; }

  const PredictionTree& tree() const { return tree_; }
  const StandardPpmConfig& config() const { return config_; }

  /// Deserialisation hook (ppm/serialize.hpp): adopt a reconstructed tree.
  static StandardPpm from_parts(const StandardPpmConfig& config,
                                PredictionTree tree) {
    StandardPpm m(config);
    m.tree_ = std::move(tree);
    return m;
  }

 private:
  StandardPpmConfig config_;
  PredictionTree tree_;
  std::string name_;
};

}  // namespace webppm::ppm
