// Common interface of the three prefetching prediction models.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "ppm/tree.hpp"
#include "util/types.hpp"

namespace webppm::ppm {

/// One prefetch candidate: a URL the model believes the client will request
/// next, with its conditional probability estimate.
struct Prediction {
  UrlId url = kInvalidUrl;
  float probability = 0.0f;

  friend bool operator==(const Prediction&, const Prediction&) = default;
};

/// Caller-owned record of the tree nodes a batch of predict() calls walked.
/// predict() is const and touches nothing; when the caller cares about the
/// paper's path-utilisation metric it passes a scratch, accumulates over as
/// many calls as it likes, and either reads the metric directly via
/// Predictor::path_usage(scratch) or folds the batch into the model's own
/// usage marks with apply_usage(). Entries may repeat; consumers dedup.
struct UsageScratch {
  std::vector<NodeId> nodes;  ///< tree nodes touched (models with a tree)
  bool touched = false;       ///< any prediction made (tree-less models)

  void clear() {
    nodes.clear();
    touched = false;
  }
};

class Predictor {
 public:
  virtual ~Predictor() = default;

 protected:
  // Concrete models are value types (the sweep engine snapshots them by
  // copy); keep the base's copy operations available to them but protected
  // so a Predictor& can never be sliced.
  Predictor() = default;
  Predictor(const Predictor&) = default;
  Predictor& operator=(const Predictor&) = default;

 public:

  /// Produces prefetch candidates for a client whose recent click sequence
  /// (oldest first, current click last) is `context`. Candidates are
  /// deduplicated, filtered by the model's probability threshold, and
  /// sorted by descending probability (ties by URL id, so output is
  /// deterministic). Const: safe to call from any number of threads on a
  /// frozen model. When `usage` is non-null the nodes the walk touched are
  /// appended to it for the paper's path-utilisation metric.
  virtual void predict(std::span<const UrlId> context,
                       std::vector<Prediction>& out,
                       UsageScratch* usage = nullptr) const = 0;

  /// Live node count — the paper's "space" metric (Tables 1 and 2).
  virtual std::size_t node_count() const = 0;

  /// Resident bytes of the model's prediction structures — the deployment
  /// cost behind the paper's node counts. Reporting cadence only (may walk
  /// the whole structure); exported as webppm_serve_snapshot_bytes and
  /// compared arena-vs-frozen in bench/frozen_bench.
  virtual std::size_t storage_bytes() const = 0;

  /// Path utilisation of a usage batch against this model, without mutating
  /// anything. Identical to apply_usage(usage) followed by path_usage().
  virtual PredictionTree::PathUsage path_usage(
      const UsageScratch& usage) const = 0;

  /// Folds a caller-accumulated usage batch into the model's own usage
  /// marks (the owner applies batched marks; readers never do).
  virtual void apply_usage(const UsageScratch& usage) = 0;

  /// Fraction of root-to-leaf paths marked used since the last
  /// clear_usage() (marks arrive via apply_usage()).
  virtual PredictionTree::PathUsage path_usage() const = 0;
  virtual void clear_usage() = 0;

  virtual std::string_view name() const = 0;
};

/// How the longest-match rule treats a deepest match that has no recorded
/// continuation (a leaf):
///   kStrict       — the paper's §4.1 behaviour for the standard and LRS
///                   models: "matches as many previous URLs as possible to
///                   make a prediction"; if that match is a leaf, no
///                   prediction is made. This is what makes the standard
///                   model's accumulated one-off deep contexts hurt it.
///   kSkipChildless — back off to the longest shorter suffix that can
///                   predict. The popularity-based model uses this: its
///                   branch heights vary per root, so a fixed context order
///                   cannot be chosen up front.
enum class MatchPolicy : std::uint8_t { kStrict, kSkipChildless };

/// Deepest tree node whose root-path equals a suffix of `context`,
/// considering suffixes up to `max_context` URLs, under `policy`.
struct MatchResult {
  NodeId node = kNoNode;
  std::size_t context_used = 0;
};
MatchResult longest_match(const PredictionTree& tree,
                          std::span<const UrlId> context,
                          std::size_t max_context,
                          MatchPolicy policy = MatchPolicy::kSkipChildless);

/// Appends `node`'s children with conditional probability >= threshold to
/// `out`, recording each emitted child in `usage` (when given).
/// Probability = child.count / node.count.
void emit_children(const PredictionTree& tree, NodeId node, double threshold,
                   std::vector<Prediction>& out,
                   UsageScratch* usage = nullptr);

/// Deduplicates by URL (keeping the highest probability) and sorts by
/// (probability desc, url asc).
void finalize_predictions(std::vector<Prediction>& out);

}  // namespace webppm::ppm
