// Common interface of the three prefetching prediction models.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "ppm/tree.hpp"
#include "util/types.hpp"

namespace webppm::ppm {

/// One prefetch candidate: a URL the model believes the client will request
/// next, with its conditional probability estimate.
struct Prediction {
  UrlId url = kInvalidUrl;
  float probability = 0.0f;

  friend bool operator==(const Prediction&, const Prediction&) = default;
};

class Predictor {
 public:
  virtual ~Predictor() = default;

 protected:
  // Concrete models are value types (the sweep engine snapshots them by
  // copy); keep the base's copy operations available to them but protected
  // so a Predictor& can never be sliced.
  Predictor() = default;
  Predictor(const Predictor&) = default;
  Predictor& operator=(const Predictor&) = default;

 public:

  /// Produces prefetch candidates for a client whose recent click sequence
  /// (oldest first, current click last) is `context`. Candidates are
  /// deduplicated, filtered by the model's probability threshold, and
  /// sorted by descending probability (ties by URL id, so output is
  /// deterministic). Marks traversed tree nodes as used (for the paper's
  /// path-utilisation metric), hence non-const.
  virtual void predict(std::span<const UrlId> context,
                       std::vector<Prediction>& out) = 0;

  /// Live node count — the paper's "space" metric (Tables 1 and 2).
  virtual std::size_t node_count() const = 0;

  /// Fraction of root-to-leaf paths touched since the last clear_usage().
  virtual PredictionTree::PathUsage path_usage() const = 0;
  virtual void clear_usage() = 0;

  virtual std::string_view name() const = 0;
};

/// How the longest-match rule treats a deepest match that has no recorded
/// continuation (a leaf):
///   kStrict       — the paper's §4.1 behaviour for the standard and LRS
///                   models: "matches as many previous URLs as possible to
///                   make a prediction"; if that match is a leaf, no
///                   prediction is made. This is what makes the standard
///                   model's accumulated one-off deep contexts hurt it.
///   kSkipChildless — back off to the longest shorter suffix that can
///                   predict. The popularity-based model uses this: its
///                   branch heights vary per root, so a fixed context order
///                   cannot be chosen up front.
enum class MatchPolicy : std::uint8_t { kStrict, kSkipChildless };

/// Deepest tree node whose root-path equals a suffix of `context`,
/// considering suffixes up to `max_context` URLs, under `policy`.
struct MatchResult {
  NodeId node = kNoNode;
  std::size_t context_used = 0;
};
MatchResult longest_match(const PredictionTree& tree,
                          std::span<const UrlId> context,
                          std::size_t max_context,
                          MatchPolicy policy = MatchPolicy::kSkipChildless);

/// Appends `node`'s children with conditional probability >= threshold to
/// `out` and marks them used. Probability = child.count / node.count.
void emit_children(PredictionTree& tree, NodeId node, double threshold,
                   std::vector<Prediction>& out);

/// Deduplicates by URL (keeping the highest probability) and sorts by
/// (probability desc, url asc).
void finalize_predictions(std::vector<Prediction>& out);

}  // namespace webppm::ppm
