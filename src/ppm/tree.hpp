// Markov prediction tree: the shared storage structure under all three PPM
// models (standard, LRS, popularity-based).
//
// The tree is a forest: each distinct URL that heads a branch owns a root
// node; a root-to-descendant path represents an observed URL sequence and
// every node carries the number of times the path to it was traversed
// during training. "Space" in the paper's Tables 1-2 is the node count of
// this structure.
//
// Nodes live in a single arena (std::vector) and refer to each other by
// index; children are kept in a SmallChildMap keyed by URL. Pruning
// tombstones nodes and compact() reindexes the arena so node_count() is
// exact after the PB-PPM space optimisation.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "util/small_map.hpp"
#include "util/types.hpp"

namespace webppm::ppm {

using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = 0xffffffffu;

struct TreeNode {
  UrlId url = kInvalidUrl;
  std::uint32_t count = 0;   ///< traversals of the path ending here
  NodeId parent = kNoNode;   ///< kNoNode for roots
  std::uint16_t depth = 1;   ///< nodes on the path from root (root = 1)
  bool used = false;         ///< touched while predicting (utilisation)
  bool dead = false;         ///< tombstoned by pruning
  util::SmallChildMap<NodeId> children;  ///< url -> child node
};

class PredictionTree {
 public:
  /// Root for `url`, creating it if needed. `add_count` is added to the
  /// root's traversal count.
  NodeId root_or_add(UrlId url, std::uint32_t add_count = 1);

  /// Existing root for `url`, or kNoNode.
  NodeId find_root(UrlId url) const;

  /// Child of `parent` labelled `url`, creating it if needed; adds
  /// `add_count` traversals.
  NodeId child_or_add(NodeId parent, UrlId url, std::uint32_t add_count = 1);

  /// Existing child or kNoNode.
  NodeId find_child(NodeId parent, UrlId url) const;

  /// Deepest node reached by matching `path` from a root; kNoNode if the
  /// full path does not exist.
  NodeId find_path(std::span<const UrlId> path) const;

  TreeNode& node(NodeId id) { return nodes_[id]; }
  const TreeNode& node(NodeId id) const { return nodes_[id]; }

  /// Live nodes (the paper's space metric).
  std::size_t node_count() const { return live_count_; }

  std::size_t root_count() const { return roots_.size(); }

  const std::unordered_map<UrlId, NodeId>& roots() const { return roots_; }

  /// Marks a node (and nothing else) as used by a prediction walk. Marked
  /// nodes are also remembered in a side list so clear_usage() and
  /// path_usage() cost O(marked), not O(tree) — the evaluation loop calls
  /// both once per simulated day on trees with millions of nodes.
  void mark_used(NodeId id) {
    if (!nodes_[id].used) {
      nodes_[id].used = true;
      used_nodes_.push_back(id);
    }
  }

  void clear_usage();

  /// Leaves = live nodes with no live children. A root-to-leaf path counts
  /// as used when its leaf was marked. Returns {used_leaves, total_leaves}.
  struct PathUsage {
    std::size_t used = 0;
    std::size_t total = 0;
    double rate() const {
      return total == 0 ? 0.0
                        : static_cast<double>(used) / static_cast<double>(total);
    }
  };
  PathUsage path_usage() const;

  /// Path utilisation of an external batch of touched nodes, without
  /// consulting or mutating the used bits. `marked` may contain duplicates.
  /// Equivalent to mark_used() over the batch followed by path_usage() on a
  /// tree with no prior marks.
  PathUsage path_usage(std::span<const NodeId> marked) const;

  /// Tombstones `id` and its whole subtree; detaches it from its parent.
  /// Precondition: `id` is live.
  void prune_subtree(NodeId id);

  /// Compacts the arena after pruning: reindexes live nodes, drops
  /// tombstones. Invalidates all NodeIds held by callers except through
  /// the returned remap (old id -> new id, kNoNode if dead).
  std::vector<NodeId> compact();

  /// Total traversal count of all roots (denominator for root-level
  /// probabilities where needed).
  std::uint64_t total_root_count() const;

  /// Resident bytes of the arena: node storage (capacity), per-node child
  /// spill vectors, the root table, and the usage side list. O(arena) —
  /// call at reporting cadence, not on the query path. This is the number
  /// the frozen serving tree is measured against (paper Tables 1-2 count
  /// nodes; deployments pay bytes).
  std::size_t memory_bytes() const;

 private:
  std::vector<TreeNode> nodes_;
  std::unordered_map<UrlId, NodeId> roots_;
  std::size_t live_count_ = 0;
  /// Live leaves, maintained across insert/prune/compact so path_usage()
  /// need not walk the arena. Invariant: live nodes only ever hold live
  /// children (prune_subtree detaches the subtree top from its parent), so
  /// "leaf" is simply an empty child map.
  std::size_t leaf_count_ = 0;
  std::vector<NodeId> used_nodes_;  ///< nodes with the used bit set
};

}  // namespace webppm::ppm
