// Top-N predictor: the server-initiated "Top-10" prefetching baseline of
// Markatos & Chronaki (paper §6, reference [20]). The server pushes its N
// currently most popular documents regardless of the client's context.
// Included as the zero-structure baseline the Markov models are implicitly
// measured against: it captures pure popularity with no path information.
#pragma once

#include <span>
#include <unordered_map>
#include <vector>

#include "popularity/popularity.hpp"
#include "ppm/predictor.hpp"
#include "session/session.hpp"

namespace webppm::ppm {

struct TopNConfig {
  /// How many documents the server pushes (Markatos & Chronaki use 10).
  std::size_t n = 10;
};

class TopNPredictor final : public Predictor {
 public:
  explicit TopNPredictor(const TopNConfig& config = {});

  /// Builds the push set straight from a popularity table's access counts —
  /// no sessions needed. This is the serve layer's graceful-degradation
  /// fallback: when the full Markov model is unavailable, the server can
  /// still push the N most popular documents of the training window.
  static TopNPredictor from_popularity(
      const popularity::PopularityTable& table, const TopNConfig& config = {});

  /// Counts document accesses and fixes the push set to the N most
  /// frequent (ties broken by URL id for determinism). train() replaces
  /// any previous counts; train_more() accumulates on top of them and
  /// re-ranks, so incremental feeding matches one batch call.
  void train(std::span<const session::Session> sessions);
  void train_more(std::span<const session::Session> sessions);

  /// Context-independent: always returns the push set. Probabilities are
  /// each document's share of total training accesses.
  void predict(std::span<const UrlId> context, std::vector<Prediction>& out,
               UsageScratch* usage = nullptr) const override;

  /// "Space" is the push list itself.
  std::size_t node_count() const override { return push_set_.size(); }

  std::size_t storage_bytes() const override {
    return push_set_.capacity() * sizeof(Prediction) +
           counts_.bucket_count() * sizeof(void*) +
           counts_.size() * (sizeof(std::pair<UrlId, std::uint64_t>) +
                             2 * sizeof(void*));
  }

  /// No tree, hence no paths; reported as fully utilised once predictions
  /// have been requested at least once.
  PredictionTree::PathUsage path_usage(
      const UsageScratch& usage) const override {
    return {usage.touched ? push_set_.size() : 0, push_set_.size()};
  }
  void apply_usage(const UsageScratch& usage) override {
    used_ = used_ || usage.touched;
  }
  PredictionTree::PathUsage path_usage() const override {
    return {used_ ? push_set_.size() : 0, push_set_.size()};
  }
  void clear_usage() override { used_ = false; }
  std::string_view name() const override { return "top-n"; }

  const std::vector<Prediction>& push_set() const { return push_set_; }

 private:
  void rebuild_push_set();

  TopNConfig config_;
  std::unordered_map<UrlId, std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::vector<Prediction> push_set_;
  bool used_ = false;
};

}  // namespace webppm::ppm
