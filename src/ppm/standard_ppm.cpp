#include "ppm/standard_ppm.hpp"

#include <algorithm>

namespace webppm::ppm {

StandardPpm::StandardPpm(const StandardPpmConfig& config) : config_(config) {
  name_ = config_.max_height == 0
              ? "standard-ppm"
              : std::to_string(config_.max_height) + "-ppm";
}

void StandardPpm::train(std::span<const session::Session> sessions) {
  const std::uint32_t h = config_.max_height;
  for (const auto& s : sessions) {
    const auto& u = s.urls;
    for (std::size_t i = 0; i < u.size(); ++i) {
      NodeId cur = tree_.root_or_add(u[i]);
      for (std::size_t j = i + 1;
           j < u.size() && (h == 0 || j - i + 1 <= h); ++j) {
        cur = tree_.child_or_add(cur, u[j]);
      }
    }
  }
}

void StandardPpm::predict(std::span<const UrlId> context,
                          std::vector<Prediction>& out,
                          UsageScratch* usage) const {
  out.clear();
  // A fixed-height tree of H levels is an order-(H-1) Markov model: the
  // deepest useful context has H-1 URLs (level-H nodes are the predictions).
  const std::size_t max_ctx =
      config_.max_height == 0
          ? config_.max_context
          : std::min<std::size_t>(config_.max_context,
                                  config_.max_height - 1);
  const auto m =
      longest_match(tree_, context, std::max<std::size_t>(max_ctx, 1),
                    MatchPolicy::kStrict);
  if (m.node == kNoNode) return;
  if (usage != nullptr) {
    usage->nodes.push_back(m.node);
    usage->touched = true;
  }
  emit_children(tree_, m.node, config_.prob_threshold, out, usage);
  finalize_predictions(out);
}

}  // namespace webppm::ppm
