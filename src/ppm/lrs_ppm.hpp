// LRS-PPM model (paper §3.2, second approach; Pitkow & Pirolli, USENIX '99):
// keep only the Longest Repeating Subsequences — maximal URL sequences that
// occur at least `min_support` times in the training sessions — and insert
// each LRS together with all of its suffixes, so that the longest-match rule
// can start a match anywhere inside a pattern. The suffix duplication is
// what makes the LRS tree grow quickly with more training days (paper §4.3).
#pragma once

#include <span>
#include <vector>

#include "ppm/predictor.hpp"
#include "session/session.hpp"

namespace webppm::ppm {

struct LrsPpmConfig {
  /// A sequence is "repeating" when seen at least this many times
  /// (paper: "accessed twice or more" = 2).
  std::uint32_t min_support = 2;
  /// Cap on extracted pattern length (0 = unbounded).
  std::uint32_t max_height = 0;
  double prob_threshold = 0.25;
  std::uint32_t max_context = 16;
};

class LrsPpm final : public Predictor {
 public:
  explicit LrsPpm(const LrsPpmConfig& config = {});

  /// Two-phase training: build a full window tree with support counts, then
  /// extract the LRS set and re-insert each pattern plus its suffixes.
  /// train() starts from scratch; train_more() adds the sessions to the
  /// retained support tree and re-derives patterns and the prediction tree,
  /// so feeding a window in chunks matches one batch train() exactly.
  void train(std::span<const session::Session> sessions);
  void train_more(std::span<const session::Session> sessions);

  void predict(std::span<const UrlId> context, std::vector<Prediction>& out,
               UsageScratch* usage = nullptr) const override;
  std::size_t node_count() const override { return tree_.node_count(); }
  /// Serving tree + the retained support tree + extracted patterns; a model
  /// reloaded from a snapshot carries the serving tree only.
  std::size_t storage_bytes() const override {
    std::size_t bytes = tree_.memory_bytes() + support_.memory_bytes();
    bytes += patterns_.capacity() * sizeof(std::vector<UrlId>);
    for (const auto& p : patterns_) bytes += p.capacity() * sizeof(UrlId);
    return bytes;
  }
  PredictionTree::PathUsage path_usage(
      const UsageScratch& usage) const override {
    return tree_.path_usage(usage.nodes);
  }
  void apply_usage(const UsageScratch& usage) override {
    for (const NodeId id : usage.nodes) tree_.mark_used(id);
  }
  PredictionTree::PathUsage path_usage() const override {
    return tree_.path_usage();
  }
  void clear_usage() override { tree_.clear_usage(); }
  std::string_view name() const override { return "lrs-ppm"; }

  const PredictionTree& tree() const { return tree_; }

  /// The extracted longest repeating subsequences (for tests/inspection).
  const std::vector<std::vector<UrlId>>& patterns() const { return patterns_; }

  const LrsPpmConfig& config() const { return config_; }

  /// Deserialisation hook (ppm/serialize.hpp): adopt a reconstructed tree.
  /// The extracted-pattern list and support tree are not persisted
  /// (predictions only need the tree), so patterns() is empty and
  /// train_more() is not meaningful on a loaded model.
  static LrsPpm from_parts(const LrsPpmConfig& config, PredictionTree tree) {
    LrsPpm m(config);
    m.tree_ = std::move(tree);
    return m;
  }

 private:
  LrsPpmConfig config_;
  PredictionTree support_;  ///< full window tree; retained for train_more
  PredictionTree tree_;
  std::vector<std::vector<UrlId>> patterns_;
};

}  // namespace webppm::ppm
