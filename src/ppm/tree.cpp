#include "ppm/tree.hpp"

#include <algorithm>
#include <cassert>

namespace webppm::ppm {

NodeId PredictionTree::root_or_add(UrlId url, std::uint32_t add_count) {
  if (auto it = roots_.find(url); it != roots_.end()) {
    nodes_[it->second].count += add_count;
    return it->second;
  }
  const auto id = static_cast<NodeId>(nodes_.size());
  TreeNode n;
  n.url = url;
  n.count = add_count;
  n.depth = 1;
  nodes_.push_back(std::move(n));
  roots_.emplace(url, id);
  ++live_count_;
  ++leaf_count_;  // a fresh root has no children
  return id;
}

NodeId PredictionTree::find_root(UrlId url) const {
  const auto it = roots_.find(url);
  return it == roots_.end() ? kNoNode : it->second;
}

NodeId PredictionTree::child_or_add(NodeId parent, UrlId url,
                                    std::uint32_t add_count) {
  assert(parent < nodes_.size() && !nodes_[parent].dead);
  if (const NodeId* c = nodes_[parent].children.find(url)) {
    nodes_[*c].count += add_count;
    return *c;
  }
  const auto id = static_cast<NodeId>(nodes_.size());
  const bool parent_was_leaf = nodes_[parent].children.empty();
  TreeNode n;
  n.url = url;
  n.count = add_count;
  n.parent = parent;
  n.depth = static_cast<std::uint16_t>(nodes_[parent].depth + 1);
  nodes_.push_back(std::move(n));
  nodes_[parent].children[url] = id;
  ++live_count_;
  ++leaf_count_;  // the new node is a leaf ...
  if (parent_was_leaf) --leaf_count_;  // ... and its parent no longer is
  return id;
}

NodeId PredictionTree::find_child(NodeId parent, UrlId url) const {
  assert(parent < nodes_.size());
  const NodeId* c = nodes_[parent].children.find(url);
  return c ? *c : kNoNode;
}

NodeId PredictionTree::find_path(std::span<const UrlId> path) const {
  if (path.empty()) return kNoNode;
  NodeId cur = find_root(path[0]);
  for (std::size_t i = 1; cur != kNoNode && i < path.size(); ++i) {
    cur = find_child(cur, path[i]);
  }
  return cur;
}

void PredictionTree::clear_usage() {
  for (const NodeId id : used_nodes_) nodes_[id].used = false;
  used_nodes_.clear();
}

PredictionTree::PathUsage PredictionTree::path_usage() const {
  // A root-to-leaf path counts as used when the prediction process walked
  // all the way to its leaf — the leaf was the deepest matched context or
  // was emitted as a prefetch candidate (paper Fig. 2: marked paths).
  // Matching always prefers the longest suffix, so shallow duplicate
  // branches (e.g. LRS suffix copies) accumulate as unused paths.
  // Only marked nodes can be used leaves, so scan the side list instead of
  // the arena; the leaf total is maintained incrementally.
  PathUsage usage;
  usage.total = leaf_count_;
  for (const NodeId id : used_nodes_) {
    const TreeNode& n = nodes_[id];
    if (!n.dead && n.used && n.children.empty()) ++usage.used;
  }
  return usage;
}

PredictionTree::PathUsage PredictionTree::path_usage(
    std::span<const NodeId> marked) const {
  PathUsage usage;
  usage.total = leaf_count_;
  // Dedup the batch (readers append without checking), then count live
  // leaves exactly as the marked-bit variant does.
  std::vector<NodeId> uniq(marked.begin(), marked.end());
  std::sort(uniq.begin(), uniq.end());
  uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
  for (const NodeId id : uniq) {
    const TreeNode& n = nodes_[id];
    if (!n.dead && n.children.empty()) ++usage.used;
  }
  return usage;
}

void PredictionTree::prune_subtree(NodeId id) {
  assert(id < nodes_.size() && !nodes_[id].dead);
  // Detach from parent (or root table).
  TreeNode& n = nodes_[id];
  if (n.parent == kNoNode) {
    roots_.erase(n.url);
  } else {
    nodes_[n.parent].children.erase_if(
        [&](UrlId, NodeId c) { return c == id; });
  }
  // The parent sheds its last child -> it becomes a leaf.
  if (n.parent != kNoNode && nodes_[n.parent].children.empty()) {
    ++leaf_count_;
  }
  // Iterative DFS tombstoning.
  std::vector<NodeId> stack{id};
  while (!stack.empty()) {
    const NodeId cur = stack.back();
    stack.pop_back();
    if (nodes_[cur].dead) continue;
    nodes_[cur].dead = true;
    --live_count_;
    if (nodes_[cur].children.empty()) --leaf_count_;  // was a live leaf
    nodes_[cur].children.for_each(
        [&](UrlId, NodeId c) { stack.push_back(c); });
  }
}

std::vector<NodeId> PredictionTree::compact() {
  std::vector<NodeId> remap(nodes_.size(), kNoNode);
  std::vector<TreeNode> fresh;
  fresh.reserve(live_count_);
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i].dead) {
      remap[i] = static_cast<NodeId>(fresh.size());
      fresh.push_back(std::move(nodes_[i]));
    }
  }
  for (auto& n : fresh) {
    if (n.parent != kNoNode) {
      n.parent = remap[n.parent];
      assert(n.parent != kNoNode && "live child of dead parent");
    }
    util::SmallChildMap<NodeId> rebuilt;
    n.children.for_each([&](UrlId u, NodeId c) {
      if (remap[c] != kNoNode) rebuilt[u] = remap[c];
    });
    n.children = std::move(rebuilt);
  }
  nodes_ = std::move(fresh);
  for (auto& [url, root] : roots_) {
    root = remap[root];
    assert(root != kNoNode);
  }
  // Reindex the used-node list; dead entries drop out. Leaf count is
  // unaffected (compact removes only tombstoned nodes).
  std::size_t w = 0;
  for (const NodeId id : used_nodes_) {
    if (remap[id] != kNoNode) used_nodes_[w++] = remap[id];
  }
  used_nodes_.resize(w);
  return remap;
}

std::uint64_t PredictionTree::total_root_count() const {
  std::uint64_t total = 0;
  for (const auto& [url, id] : roots_) total += nodes_[id].count;
  return total;
}

std::size_t PredictionTree::memory_bytes() const {
  std::size_t bytes = nodes_.capacity() * sizeof(TreeNode);
  for (const TreeNode& n : nodes_) bytes += n.children.heap_bytes();
  // unordered_map internals are approximated: one bucket pointer per
  // bucket, one heap node (payload + hash + next pointer) per entry.
  bytes += roots_.bucket_count() * sizeof(void*);
  bytes += roots_.size() *
           (sizeof(std::pair<UrlId, NodeId>) + 2 * sizeof(void*));
  bytes += used_nodes_.capacity() * sizeof(NodeId);
  return bytes;
}

}  // namespace webppm::ppm
