#include "ppm/serialize.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

namespace webppm::ppm {
namespace {

constexpr std::string_view kTreeMagic = "webppm-tree";
constexpr std::string_view kLinksMagic = "webppm-links";

/// Records `msg` in `error` (when requested) and yields the nullopt the
/// loaders return, so every reject path reads `return fail(error, "...")`.
std::nullopt_t fail(std::string* error, std::string msg) {
  if (error != nullptr) *error = std::move(msg);
  return std::nullopt;
}

bool read_header(std::istream& in, std::string_view magic, std::size_t& count,
                 std::string* error) {
  std::string word, version;
  if (!(in >> word >> version >> count)) {
    fail(error, std::string(magic) + ": header truncated or non-numeric");
    return false;
  }
  if (word != magic) {
    fail(error, std::string(magic) + ": bad magic '" + word + "'");
    return false;
  }
  if (version != "v1") {
    fail(error, std::string(magic) + ": unsupported version '" + version +
                    "'");
    return false;
  }
  return true;
}

}  // namespace

void save_tree(std::ostream& out, const PredictionTree& tree) {
  out << kTreeMagic << " v1 " << tree.node_count() << '\n';
  for (NodeId id = 0; id < tree.node_count(); ++id) {
    const auto& n = tree.node(id);
    out << n.url << ' ' << n.count << ' '
        << (n.parent == kNoNode ? -1 : static_cast<long long>(n.parent))
        << '\n';
  }
}

std::optional<PredictionTree> load_tree(std::istream& in,
                                        std::string* error) {
  std::size_t count = 0;
  if (!read_header(in, kTreeMagic, count, error)) return std::nullopt;
  PredictionTree tree;
  for (std::size_t i = 0; i < count; ++i) {
    UrlId url;
    std::uint32_t node_count;
    long long parent;
    if (!(in >> url >> node_count >> parent)) {
      return fail(error, "tree: node " + std::to_string(i) +
                             ": line truncated or non-numeric");
    }
    if (parent < -1) {
      return fail(error, "tree: node " + std::to_string(i) +
                             ": parent " + std::to_string(parent) +
                             " (roots are exactly -1)");
    }
    if (parent < 0) {
      if (tree.find_root(url) != kNoNode) {
        return fail(error, "tree: node " + std::to_string(i) +
                               ": duplicate root url " + std::to_string(url));
      }
      const NodeId id = tree.root_or_add(url, node_count);
      if (id != i) {
        return fail(error, "tree: node " + std::to_string(i) +
                               ": arena id mismatch");
      }
    } else {
      if (static_cast<std::size_t>(parent) >= i) {
        return fail(error, "tree: node " + std::to_string(i) + ": parent " +
                               std::to_string(parent) +
                               " does not precede child");
      }
      const auto p = static_cast<NodeId>(parent);
      if (tree.find_child(p, url) != kNoNode) {
        return fail(error, "tree: node " + std::to_string(i) +
                               ": duplicate child url " +
                               std::to_string(url) + " under parent " +
                               std::to_string(parent));
      }
      const NodeId id = tree.child_or_add(p, url, node_count);
      if (id != i) {
        return fail(error, "tree: node " + std::to_string(i) +
                               ": arena id mismatch");
      }
    }
  }
  return tree;
}

void save_model(std::ostream& out, const StandardPpm& model) {
  out << "webppm-standard v1 " << model.config().max_height << ' '
      << model.config().prob_threshold << ' ' << model.config().max_context
      << '\n';
  save_tree(out, model.tree());
}

std::optional<StandardPpm> load_standard(std::istream& in,
                                         std::string* error) {
  std::string word, version;
  StandardPpmConfig cfg;
  if (!(in >> word >> version >> cfg.max_height >> cfg.prob_threshold >>
        cfg.max_context) ||
      word != "webppm-standard" || version != "v1") {
    return fail(error, "standard: malformed model header");
  }
  auto tree = load_tree(in, error);
  if (!tree) return std::nullopt;
  return StandardPpm::from_parts(cfg, std::move(*tree));
}

void save_model(std::ostream& out, const LrsPpm& model) {
  out << "webppm-lrs v1 " << model.config().min_support << ' '
      << model.config().max_height << ' ' << model.config().prob_threshold
      << ' ' << model.config().max_context << '\n';
  save_tree(out, model.tree());
}

std::optional<LrsPpm> load_lrs(std::istream& in, std::string* error) {
  std::string word, version;
  LrsPpmConfig cfg;
  if (!(in >> word >> version >> cfg.min_support >> cfg.max_height >>
        cfg.prob_threshold >> cfg.max_context) ||
      word != "webppm-lrs" || version != "v1") {
    return fail(error, "lrs: malformed model header");
  }
  auto tree = load_tree(in, error);
  if (!tree) return std::nullopt;
  return LrsPpm::from_parts(cfg, std::move(*tree));
}

void save_model(std::ostream& out, const PopularityPpm& model) {
  const auto& cfg = model.config();
  out << "webppm-pb v1";
  for (const auto h : cfg.height_by_grade) out << ' ' << h;
  out << ' ' << cfg.prob_threshold << ' ' << cfg.max_context << ' '
      << (cfg.special_links ? 1 : 0) << ' ' << cfg.link_prob_threshold << ' '
      << cfg.link_top_k << ' ' << cfg.min_relative_probability << ' '
      << cfg.min_absolute_count << '\n';
  save_tree(out, model.tree());
  out << kLinksMagic << " v1 " << model.links().size() << '\n';
  // Sorted by root so the stream is deterministic (the links live in an
  // unordered_map): saving the same model — or a model just loaded from a
  // stream — always produces identical bytes, which the snapshot store's
  // checksums and the round-trip tests rely on.
  std::vector<NodeId> roots;
  roots.reserve(model.links().size());
  for (const auto& [root, targets] : model.links()) roots.push_back(root);
  std::sort(roots.begin(), roots.end());
  for (const auto root : roots) {
    const auto& targets = model.links().at(root);
    out << root << ' ' << targets.size();
    for (const auto t : targets) out << ' ' << t;
    out << '\n';
  }
}

std::optional<PopularityPpm> load_popularity(
    std::istream& in, const popularity::PopularityTable* grades,
    std::string* error) {
  std::string word, version;
  PopularityPpmConfig cfg;
  int links_flag = 0;
  if (!(in >> word >> version) || word != "webppm-pb" || version != "v1") {
    return fail(error, "pb: malformed model header");
  }
  for (auto& h : cfg.height_by_grade) {
    if (!(in >> h)) return fail(error, "pb: truncated height-by-grade");
  }
  if (!(in >> cfg.prob_threshold >> cfg.max_context >> links_flag >>
        cfg.link_prob_threshold >> cfg.link_top_k >>
        cfg.min_relative_probability >> cfg.min_absolute_count)) {
    return fail(error, "pb: truncated or non-numeric config");
  }
  cfg.special_links = links_flag != 0;

  auto tree = load_tree(in, error);
  if (!tree) return std::nullopt;

  std::size_t link_roots = 0;
  if (!read_header(in, kLinksMagic, link_roots, error)) return std::nullopt;
  std::unordered_map<NodeId, std::vector<NodeId>> links;
  for (std::size_t i = 0; i < link_roots; ++i) {
    NodeId root;
    std::size_t k;
    if (!(in >> root >> k)) {
      return fail(error, "pb: link record " + std::to_string(i) +
                             " truncated");
    }
    if (root >= tree->node_count()) {
      return fail(error, "pb: link root " + std::to_string(root) +
                             " out of range");
    }
    // Links hang off tree roots only (paper Rule 3 duplicates popular URLs
    // under the branch head); reject interior nodes posing as link roots.
    if (tree->node(root).parent != kNoNode) {
      return fail(error, "pb: link root " + std::to_string(root) +
                             " is not a tree root");
    }
    // Targets are distinct node ids, so k can never legitimately exceed the
    // node count — reject before allocating what a corrupt length claims.
    if (k > tree->node_count()) {
      return fail(error, "pb: link root " + std::to_string(root) +
                             " claims " + std::to_string(k) + " targets");
    }
    std::vector<NodeId> targets(k);
    for (auto& t : targets) {
      if (!(in >> t) || t >= tree->node_count()) {
        return fail(error, "pb: link target under root " +
                               std::to_string(root) +
                               " truncated or out of range");
      }
      // Rule 3 targets sit "not immediately following the heading URL",
      // i.e. at depth >= 3; anything shallower is a forged link.
      if (tree->node(t).depth < 3) {
        return fail(error, "pb: link target " + std::to_string(t) +
                               " at depth < 3");
      }
      if (std::count(targets.begin(), targets.end(), t) > 1) {
        return fail(error, "pb: duplicate link target " + std::to_string(t) +
                               " under root " + std::to_string(root));
      }
    }
    if (!links.emplace(root, std::move(targets)).second) {
      return fail(error, "pb: duplicate link root " + std::to_string(root));
    }
  }
  return PopularityPpm::from_parts(cfg, grades, std::move(*tree),
                                   std::move(links));
}

}  // namespace webppm::ppm
