// Model serialisation: save a trained model to a stream and load it back.
//
// A production prefetching server trains overnight and serves from the
// frozen model; this is the handoff format. The format is a line-based
// text protocol (one node per line, parent-before-child order), chosen for
// debuggability over compactness — the trees are small by design.
//
// Format:
//   webppm-tree v1 <node-count>
//   <url> <count> <parent-index|-1>          # one line per node, id order
//   webppm-links <root-count>                # PB-PPM only
//   <root-node> <k> <target-node>*k
#pragma once

#include <iosfwd>
#include <optional>

#include "ppm/lrs_ppm.hpp"
#include "ppm/popularity_ppm.hpp"
#include "ppm/standard_ppm.hpp"
#include "ppm/tree.hpp"

namespace webppm::ppm {

/// Writes a tree (which must be compact: no tombstones). Nodes are written
/// in arena order; a child is always created after its parent, and
/// compact() preserves relative order, so parents always precede children
/// and the loader reconstructs in one pass.
void save_tree(std::ostream& out, const PredictionTree& tree);

/// Reads a tree written by save_tree. Returns nullopt on malformed input;
/// when `error` is non-null it receives the reason (which header field or
/// node line was rejected and why) so operators can log what a corrupt
/// stream actually violated.
std::optional<PredictionTree> load_tree(std::istream& in,
                                        std::string* error = nullptr);

/// Whole-model round-trips. Configuration is serialised alongside the
/// structure so a loaded model predicts identically.
void save_model(std::ostream& out, const StandardPpm& model);
void save_model(std::ostream& out, const LrsPpm& model);
void save_model(std::ostream& out, const PopularityPpm& model);

/// Loaders mirror save_model. On malformed input they return nullopt and,
/// when `error` is non-null, a one-line reason (the rejected field or
/// structural rule) — the snapshot store logs these when rolling back past
/// a corrupt generation.
std::optional<StandardPpm> load_standard(std::istream& in,
                                         std::string* error = nullptr);
std::optional<LrsPpm> load_lrs(std::istream& in,
                               std::string* error = nullptr);
/// `grades` must outlive the returned model (as with the constructor).
std::optional<PopularityPpm> load_popularity(
    std::istream& in, const popularity::PopularityTable* grades,
    std::string* error = nullptr);

}  // namespace webppm::ppm
