// Popularity-based PPM (paper §3.4) — the paper's primary contribution.
//
// The Markov prediction tree grows with a *variable* height per branch:
// a branch headed by a popular URL may grow long (grade 3 -> height 7),
// a branch headed by an unpopular URL stays short (grade 0 -> height 1).
// Build rules:
//   1. Branch height cap is proportional to the head URL's popularity grade.
//   2. A URL occurrence extends all open branches, but heads a *new* branch
//      only at session start or when its grade exceeds its predecessor's
//      (rule 4: "added only once ... unless the URL's popularity grade is
//      higher than the node ahead of it"), which limits root count.
//   3. A popular URL appearing deeper in a branch (not immediately after the
//      head) gets a special link from the branch root to its duplicated
//      node; when a client clicks a root URL these links yield additional
//      predictions for popular documents.
//   4. Post-build space optimisation: (a) cut subtrees whose relative access
//      probability (count / parent count) is below a threshold; (b)
//      optionally drop nodes with absolute count <= 1.
#pragma once

#include <array>
#include <cassert>
#include <span>
#include <unordered_map>
#include <vector>

#include "popularity/popularity.hpp"
#include "ppm/predictor.hpp"
#include "session/session.hpp"

namespace webppm::ppm {

struct PopularityPpmConfig {
  /// Branch height cap indexed by the head URL's grade (paper §4.1:
  /// grade 0 -> 1, grade 1 -> 3, grade 2 -> 5, grade 3 -> 7).
  std::array<std::uint32_t, popularity::kGradeCount> height_by_grade{1, 3, 5,
                                                                     7};
  double prob_threshold = 0.25;
  std::uint32_t max_context = 16;

  /// Enables rule 3's root -> duplicated-popular-node links.
  bool special_links = true;
  /// Probability floor for link predictions. Links are multi-step-ahead
  /// predictions whose conditional probabilities are naturally far below
  /// next-click probabilities; the paper gives popular URLs "more
  /// considerations for prefetching", so links use their own (low) floor
  /// rather than prob_threshold.
  double link_prob_threshold = 0.05;
  /// At most this many link targets (by descending traversal count) are
  /// emitted per root click; 0 = unlimited. Keeps the "more consideration
  /// for popular URLs" mechanism from flooding the downlink.
  std::uint32_t link_top_k = 3;

  /// Space optimisation pass 1: prune subtrees whose relative access
  /// probability is below this (paper §3.4: "ranging 5% to 1%"). 0 disables.
  double min_relative_probability = 0.05;
  /// Space optimisation pass 2: prune non-root nodes with absolute count
  /// <= this (paper uses 1 for the UCB-CS trace). 0 disables.
  std::uint32_t min_absolute_count = 0;
};

class PopularityPpm final : public Predictor {
 public:
  /// `grades` must outlive the model; it is the popularity ranking computed
  /// over the training window (paper §3.1).
  PopularityPpm(const PopularityPpmConfig& config,
                const popularity::PopularityTable* grades);

  void train(std::span<const session::Session> sessions);

  /// Runs the configured space-optimisation passes (idempotent). Called
  /// automatically by train(); exposed separately for ablation benches.
  void optimize_space();

  void predict(std::span<const UrlId> context, std::vector<Prediction>& out,
               UsageScratch* usage = nullptr) const override;
  std::size_t node_count() const override { return tree_.node_count(); }
  std::size_t storage_bytes() const override {
    std::size_t bytes = tree_.memory_bytes();
    bytes += links_.bucket_count() * sizeof(void*);
    for (const auto& [root, targets] : links_) {
      bytes += sizeof(std::pair<NodeId, std::vector<NodeId>>) +
               2 * sizeof(void*) + targets.capacity() * sizeof(NodeId);
    }
    return bytes;
  }
  PredictionTree::PathUsage path_usage(
      const UsageScratch& usage) const override {
    return tree_.path_usage(usage.nodes);
  }
  void apply_usage(const UsageScratch& usage) override {
    for (const NodeId id : usage.nodes) tree_.mark_used(id);
  }
  PredictionTree::PathUsage path_usage() const override {
    return tree_.path_usage();
  }
  void clear_usage() override { tree_.clear_usage(); }
  std::string_view name() const override { return "pb-ppm"; }

  const PredictionTree& tree() const { return tree_; }
  const PopularityPpmConfig& config() const { return config_; }

  /// Special links per root (for tests/inspection): root node -> targets.
  const std::unordered_map<NodeId, std::vector<NodeId>>& links() const {
    return links_;
  }

  /// Trains without running the space optimisation (ablation support; also
  /// the append path the sweep engine uses to grow its unpruned base tree).
  void train_without_optimization(std::span<const session::Session> sessions);

  /// Repoints the model at a different popularity table (same lifetime
  /// contract as the constructor). The sweep engine uses this when copying
  /// a model: the copy must read grades from storage owned by the engine,
  /// not from a table the originating sweep point is about to replace.
  void rebind_grades(const popularity::PopularityTable* grades) {
    assert(grades != nullptr);
    grades_ = grades;
  }

  /// Deserialisation hook (ppm/serialize.hpp).
  static PopularityPpm from_parts(
      const PopularityPpmConfig& config,
      const popularity::PopularityTable* grades, PredictionTree tree,
      std::unordered_map<NodeId, std::vector<NodeId>> links) {
    PopularityPpm m(config, grades);
    m.tree_ = std::move(tree);
    m.links_ = std::move(links);
    m.rank_links();
    return m;
  }

 private:
  void insert_session(const session::Session& s);

  /// Sorts every link-target list by (traversal count desc, root-to-node
  /// URL path asc) — the canonical emission order predict() uses. Counts
  /// only change while training, so every mutating entry point (train,
  /// train_without_optimization, optimize_space, from_parts) re-ranks
  /// eagerly before returning; predict() is const and relies on the
  /// links-are-ranked invariant.
  void rank_links();

  PopularityPpmConfig config_;
  const popularity::PopularityTable* grades_;
  PredictionTree tree_;
  std::unordered_map<NodeId, std::vector<NodeId>> links_;
  bool links_ranked_ = false;
};

}  // namespace webppm::ppm
